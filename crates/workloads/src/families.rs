//! The benchmark families of Table 3, regenerated from their mathematical
//! definitions (QASMBench sources are not vendored; see `DESIGN.md` §4.6).
//!
//! Families marked *exact* reproduce the paper's `#Rz` / `#CNOT` columns
//! gate-for-gate; the rest are structurally faithful and calibrated to the
//! table (the `table3` bench prints paper vs generated counts side by side).

use crate::common::{rx, rzz, u3_block, AngleStream};
use rescq_circuit::{transpile, Angle, Circuit};

/// 1-D transverse-field Ising Trotter step (`ising_nN`, exact).
///
/// One step: `Rzz` on each of the `n−1` bonds (2 CNOT + 1 Rz each), an `Rx`
/// on every qubit, and a longitudinal `Rz` tail on `n/2 − 1` qubits — the
/// merged-rotation shape Qiskit produces, totalling `⌈1.5n⌉ − 1 + (n−1)` Rz
/// and `2(n−1)` CNOTs, matching Table 3 for every listed size.
pub mod ising {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0x1516);
        // Transverse field.
        for q in 0..n {
            rx(&mut c, q, angles.next_angle());
        }
        // Brickwork bonds: even bonds then odd bonds (largely parallel).
        for parity in 0..2 {
            for q in (parity..n.saturating_sub(1)).step_by(2) {
                rzz(&mut c, q, q + 1, angles.next_angle());
            }
        }
        // Longitudinal tail after rotation merging.
        let tail = (3 * n as usize).div_ceil(2) - 1 - n as usize;
        for q in 0..tail as u32 {
            c.rz(q, angles.next_angle());
        }
        c
    }
}

/// Approximate quantum Fourier transform (`qft_nN`, exact).
///
/// Reverse-engineered from Table 3: the QASMBench "large" QFTs are
/// *approximate* QFTs keeping controlled phases up to neighbour distance 17
/// (`CNOT = 2·Σᵢ min(n−1−i, 17)`, `Rz = 2·ΣCP + (n−1)`); `qft_n18` is the
/// full transform. Angles are exact dyadic `π/2^dist`, so the deeper
/// rotations terminate their RUS ladders early — observable in Fig 5.
pub mod qft {
    use super::*;

    /// Neighbour-distance cutoff of the QASMBench approximate QFT.
    pub const APPROX_CUTOFF: u32 = 17;

    /// Generates the circuit.
    pub fn generate(n: u32, _seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n {
            c.h(i);
            let max_dist = (n - 1 - i).min(APPROX_CUTOFF);
            for dist in 1..=max_dist {
                let j = i + dist;
                // Merged controlled-phase: 2 Rz + 2 CNOT (Qiskit's form after
                // adjacent-rotation merging).
                let half = Angle::dyadic_pi(1, dist + 1);
                c.rz(j, half);
                c.cnot(j, i);
                c.rz(i, transpile::negate(half));
                c.cnot(j, i);
            }
        }
        // Residual merged phases: one per qubit except the last.
        for i in 0..n - 1 {
            c.rz(i, Angle::dyadic_pi(1, (n - 1 - i).min(APPROX_CUTOFF) + 1));
        }
        c
    }
}

/// W-state preparation (`wstate_nN`, exact).
///
/// A sequential chain of `n−1` controlled-rotation blocks, each lowering into
/// 6 Rz + 2 CNOT (+4 H): `Rz = 6(n−1)`, `CNOT = 2(n−1)` — Table 3's
/// `wstate_n27` row (156, 52). The rotation angles are the exact W-state
/// amplitudes `θᵢ = 2·acos(√(1/(n−i)))`.
pub mod wstate {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, _seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        c.x(n - 1);
        for i in 0..n - 1 {
            let frac = 1.0 / (n - i) as f64;
            let theta = 2.0 * frac.sqrt().acos();
            let (ctl, tgt) = (n - 1 - i, n - 2 - i);
            // Controlled-Ry lowered to the 6-rotation form.
            for half in [theta / 2.0, -theta / 2.0] {
                c.rz(tgt, Angle::radians(half / 2.0));
                c.h(tgt);
                c.rz(tgt, Angle::radians(half));
                c.h(tgt);
                c.rz(tgt, Angle::radians(-half / 2.0));
                c.cnot(ctl, tgt);
            }
        }
        c
    }
}

/// SupermarQ Hamiltonian simulation (`HamiltonianSimulation_nN`, exact).
///
/// One TFIM Trotter step: `Rx` per qubit and `Rzz` per bond —
/// `Rz = 2n − 1`, `CNOT = 2(n−1)`.
pub mod hamiltonian_simulation {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0x4a5);
        for q in 0..n {
            rx(&mut c, q, angles.next_angle());
        }
        for q in 0..n - 1 {
            rzz(&mut c, q, q + 1, angles.next_angle());
        }
        c
    }
}

/// SupermarQ vanilla QAOA on the complete graph (`QAOAVanilla_n15`, exact).
///
/// p = 1: `Rzz` per edge of K_n (`2·C(n,2)` CNOTs) plus the `Rx` mixer —
/// `Rz = C(n,2) + n`, `CNOT = 2·C(n,2)`.
pub mod qaoa_vanilla {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0x9a0a);
        for q in 0..n {
            c.h(q);
        }
        for a in 0..n {
            for b in a + 1..n {
                rzz(&mut c, a, b, angles.next_angle());
            }
        }
        for q in 0..n {
            rx(&mut c, q, angles.next_angle());
        }
        c
    }
}

/// SupermarQ QAOA with a fermionic swap network (`QAOAFermionicSwap_n15`,
/// exact).
///
/// The swap network fuses each ZZ interaction with a SWAP into 3 CNOTs +
/// 1 Rz; after `C(n,2)` layers every pair has interacted —
/// `CNOT = 3·C(n,2)`, `Rz = C(n,2) + n` (with the mixer).
pub mod qaoa_fermionic_swap {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0xfe55);
        for q in 0..n {
            c.h(q);
        }
        // Odd-even transposition network: n rounds of alternating-parity
        // fused ZZ+SWAP blocks = C(n,2) blocks in total.
        for round in 0..n {
            for a in ((round % 2)..n - 1).step_by(2) {
                let b = a + 1;
                c.cnot(a, b);
                c.rz(b, angles.next_angle());
                c.cnot(b, a);
                c.cnot(a, b);
            }
        }
        for q in 0..n {
            rx(&mut c, q, angles.next_angle());
        }
        c
    }
}

/// SupermarQ VQE ansatz (`VQE_n13`, exact).
///
/// Two dense single-qubit rotation layers (3 Rz each) around one CNOT chain:
/// `Rz = 6n`, `CNOT = n − 1`.
pub mod vqe {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0xe0e);
        for q in 0..n {
            u3_block(&mut c, q, &mut angles);
        }
        for q in 0..n - 1 {
            c.cnot(q, q + 1);
        }
        for q in 0..n {
            u3_block(&mut c, q, &mut angles);
        }
        c
    }
}

/// QASMBench `gcm_n13` (calibrated): generator-coordinate-method chemistry
/// circuit — 381 two-qubit Pauli-evolution terms of 4 Rz + 2 CNOT each plus a
/// 4-rotation state-prep layer: `Rz = 1528`, `CNOT = 762`, exactly the table.
pub mod gcm {
    use super::*;

    /// Number of two-qubit evolution terms in the n=13 instance.
    const TERMS: usize = 381;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0x6c3);
        for q in 0..4.min(n) {
            c.rz(q, angles.next_angle());
        }
        for _ in 0..TERMS {
            let (a, b) = angles.next_pair(n);
            c.rz(a, angles.next_angle());
            c.rz(b, angles.next_angle());
            c.cnot(a, b);
            c.rz(b, angles.next_angle());
            c.cnot(a, b);
            c.rz(b, angles.next_angle());
        }
        c
    }
}

/// QASMBench `dnn_n16` (calibrated): quantum neural network — an 8-rotation
/// encoding layer per qubit, then 24 layers of two dense rotation blocks per
/// qubit and a CNOT ring: `Rz = 2432`, `CNOT = 384`, exactly the table and
/// its ≈6.3 Rz-per-CNOT density (the highest of all benchmarks, §5.2).
pub mod dnn {
    use super::*;

    const LAYERS: u32 = 24;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0xd00);
        // Encoding: 8 rotations per qubit.
        for q in 0..n {
            u3_block(&mut c, q, &mut angles);
            c.rz(q, angles.next_angle());
            c.h(q);
            u3_block(&mut c, q, &mut angles);
            c.rz(q, angles.next_angle());
        }
        for _ in 0..LAYERS {
            for q in 0..n {
                u3_block(&mut c, q, &mut angles);
                u3_block(&mut c, q, &mut angles);
            }
            for q in 0..n {
                c.cnot(q, (q + 1) % n);
            }
        }
        c
    }
}

/// QASMBench `qugan_nN` (calibrated): quantum GAN generator/discriminator
/// ansatz — `n−2` two-qubit units of 11 Rz + 8 CNOT plus 4 prep rotations:
/// `Rz = 11(n−2) + 4`, `CNOT = 8(n−2)`, matching all three table rows.
pub mod qugan {
    use super::*;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0x6a9);
        for q in 0..4.min(n) {
            c.rz(q, angles.next_angle());
        }
        for i in 0..n - 2 {
            let (a, b) = (i, i + 1);
            // Two Ry-style rotations then four entangle-rotate rounds.
            c.rz(a, angles.next_angle());
            c.rz(b, angles.next_angle());
            for _ in 0..4 {
                c.cnot(a, b);
                c.rz(b, angles.next_angle());
                c.cnot(b, a);
                c.rz(a, angles.next_angle());
            }
            c.rz(b, angles.next_angle());
        }
        c
    }
}

/// QASMBench `multiplier_nN` (structural): a genuine shift-and-add binary
/// multiplier over `w`-bit inputs (`n = 4w + 1` qubits: two inputs, a
/// `2w`-bit product and a carry), built from Toffoli-decomposed controlled
/// ripple-carry adders and rotation-merged. Counts land near the table's
/// ≈1:1 Rz:CNOT ratio; the `table3` bench reports the deviation.
pub mod multiplier {
    use super::*;

    /// Input width for a requested qubit budget.
    pub fn width_for_qubits(n: u32) -> u32 {
        ((n.saturating_sub(1)) / 4).max(1)
    }

    /// Generates the circuit on exactly `n` qubits (extras stay idle).
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let w = width_for_qubits(n);
        let mut c = Circuit::new(n);
        let _ = seed;
        let a = |i: u32| i; // multiplicand bits
        let b = |i: u32| w + i; // multiplier bits
        let p = |i: u32| 2 * w + i; // product bits (2w)
        let carry = 4 * w; // single ancilla-as-data carry

        // Shift-and-add: for each multiplier bit b_j, controlled-add
        // (a << j) into the product using doubly-controlled MAJ/UMA blocks.
        for j in 0..w {
            for i in 0..w {
                // Partial-product AND into the carry slot, then ripple.
                transpile::toffoli(&mut c, a(i), b(j), carry);
                // Ripple the carry through product bit i+j.
                transpile::toffoli(&mut c, carry, p(i + j), p((i + j + 1).min(2 * w - 1)));
                c.cnot(carry, p(i + j));
                // Uncompute the AND.
                transpile::toffoli(&mut c, a(i), b(j), carry);
            }
        }
        transpile::merge_rotations(&c)
    }
}

/// Decoder-stress scenarios (`decoder_stress_nN`): bursty rotation layers.
///
/// Not a Table 3 family — a synthetic workload for the `rescq-decoder`
/// subsystem. Each burst fires a dense volley of generic rotations on every
/// qubit (each a feed-forward injection whose syndrome window lands on the
/// classical decoder at nearly the same time), followed by a quiet
/// entangling stretch during which a backlogged decoder can drain. Sweeping
/// decoder throughput against this family separates the decoder-limited
/// regime from the preparation-limited one.
pub mod decoder_stress {
    use super::*;

    /// Rotation layers per burst.
    pub const BURST_LAYERS: u32 = 3;
    /// Burst/quiet periods in the circuit.
    pub const BURSTS: u32 = 4;

    /// Generates the circuit.
    pub fn generate(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0xDEC0DE);
        for _ in 0..BURSTS {
            // Burst: every qubit rotates BURST_LAYERS times back to back —
            // n × BURST_LAYERS injection outcomes hit the decoder together.
            for _ in 0..BURST_LAYERS {
                for q in 0..n {
                    c.rz(q, angles.next_angle());
                }
            }
            // Quiet stretch: a Clifford-only entangling brickwork that
            // produces no feed-forward windows at all.
            for parity in 0..2 {
                for q in (parity..n.saturating_sub(1)).step_by(2) {
                    c.cnot(q, q + 1);
                }
            }
            for q in 0..n {
                c.h(q);
            }
        }
        c
    }
}

/// T-gate factory scenarios (`factory_nN`): rotation-pipeline tiles feeding
/// a logical compute block.
///
/// Not a Table 3 family — a synthetic workload for the priority-class
/// lattice on the reservation ledger. The first [`factory::factory_count`]
/// qubits are *factory tiles*: each runs a long chain of continuous-angle
/// rotations (a repeat-until-success `|mθ⟩`/T-state production pipeline)
/// and periodically delivers its output into the compute block through a
/// CNOT. The remaining qubits are the *compute block*: an entangling CNOT
/// brickwork with sparse rotations. The factory chains dominate the
/// critical path, so scheduling policies that keep the factories fed —
/// e.g. `priority_classes` promoting factory regions over compute regions —
/// shorten the makespan, while class-blind seniority lets older compute
/// claims stall the pipelines on contended fabrics.
pub mod factory {
    use super::*;

    /// Rotation-burst length per factory tile per round (chosen so factory
    /// chains dominate their tiles: ≥ 4 rotations per delivery CNOT, which
    /// is what the engine's factory-tile classifier keys on).
    pub const BURST: u32 = 4;
    /// Production/delivery rounds in the circuit.
    pub const ROUNDS: u32 = 4;

    /// Number of factory tiles for a requested qubit budget (the rest is
    /// the compute block).
    pub fn factory_count(n: u32) -> u32 {
        (n / 4).max(2)
    }

    /// Generates the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (at least two factory tiles and two compute
    /// qubits are required).
    pub fn generate(n: u32, seed: u64) -> Circuit {
        assert!(n >= 4, "factory_nN needs n >= 4, got {n}");
        let f = factory_count(n);
        let compute = n - f;
        let mut c = Circuit::new(n);
        let mut angles = AngleStream::new(seed ^ 0xFAC7);
        for round in 0..ROUNDS {
            // Factory tiles: continuous-rotation pipelines, interleaved
            // across tiles so the production runs in parallel.
            for _ in 0..BURST {
                for k in 0..f {
                    c.rz(k, angles.next_angle());
                }
            }
            // Delivery: each tile hands its state to a compute consumer
            // (round-robin, so the whole block eventually depends on every
            // factory).
            for k in 0..f {
                let consumer = f + (round * f + k) % compute;
                c.cnot(k, consumer);
            }
            // Compute block: entangling brickwork plus a rotation layer —
            // plenty of ancilla demand and enough compute-side injection
            // pipelines to contend with the factories for prep ancillas
            // (each compute qubit stays far below the factory classifier's
            // rotation dominance threshold thanks to its CNOT endpoints).
            for parity in 0..2 {
                for q in ((f + parity)..n.saturating_sub(1)).step_by(2) {
                    c.cnot(q, q + 1);
                }
            }
            for q in f..n {
                c.rz(q, angles.next_angle());
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_counts_exact() {
        for (n, rz, cnot) in [
            (34, 83, 66),
            (42, 103, 82),
            (66, 163, 130),
            (98, 243, 194),
            (420, 1048, 838),
        ] {
            let c = ising::generate(n, 1);
            let s = c.stats();
            assert_eq!((s.rz, s.cnot), (rz, cnot), "ising_n{n}");
        }
    }

    #[test]
    fn qft_counts_exact() {
        for (n, rz, cnot) in [
            (29, 708, 680),
            (63, 1898, 1836),
            (160, 5293, 5134),
            (18, 323, 306),
        ] {
            let c = qft::generate(n, 1);
            let s = c.stats();
            assert_eq!((s.rz, s.cnot), (rz, cnot), "qft_n{n}");
        }
    }

    #[test]
    fn qft_angles_are_dyadic() {
        let c = qft::generate(10, 1);
        assert!(c
            .gates()
            .iter()
            .filter_map(|g| g.angle())
            .all(|a| a.is_dyadic()));
    }

    #[test]
    fn wstate_counts_exact() {
        let s = wstate::generate(27, 1).stats();
        assert_eq!((s.rz, s.cnot), (156, 52));
        // Largely sequential: depth close to gate count on the chain.
        let c = wstate::generate(27, 1);
        assert!(c.depth() > c.len() / 3);
    }

    #[test]
    fn hamiltonian_simulation_counts_exact() {
        for (n, rz, cnot) in [(25, 49, 48), (50, 99, 98), (75, 149, 148)] {
            let s = hamiltonian_simulation::generate(n, 1).stats();
            assert_eq!((s.rz, s.cnot), (rz, cnot), "HamiltonianSimulation_n{n}");
        }
    }

    #[test]
    fn qaoa_counts_exact() {
        let s = qaoa_vanilla::generate(15, 1).stats();
        assert_eq!((s.rz, s.cnot), (120, 210));
        let s = qaoa_fermionic_swap::generate(15, 1).stats();
        assert_eq!((s.rz, s.cnot), (120, 315));
    }

    #[test]
    fn vqe_counts_exact() {
        let s = vqe::generate(13, 1).stats();
        assert_eq!((s.rz, s.cnot), (78, 12));
    }

    #[test]
    fn gcm_counts_exact() {
        let s = gcm::generate(13, 1).stats();
        assert_eq!((s.rz, s.cnot), (1528, 762));
    }

    #[test]
    fn dnn_counts_exact() {
        let s = dnn::generate(16, 1).stats();
        assert_eq!((s.rz, s.cnot), (2432, 384));
    }

    #[test]
    fn qugan_counts_exact() {
        for (n, rz, cnot) in [(39, 411, 296), (71, 763, 552), (111, 1203, 872)] {
            let s = qugan::generate(n, 1).stats();
            assert_eq!((s.rz, s.cnot), (rz, cnot), "qugan_n{n}");
        }
    }

    #[test]
    fn multiplier_near_table_ratio() {
        // Structural generator: verify the ≈1:1 Rz:CNOT shape and magnitude.
        let s = multiplier::generate(45, 1).stats();
        let ratio = s.rz as f64 / s.cnot as f64;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "multiplier ratio {ratio} (rz={}, cnot={})",
            s.rz,
            s.cnot
        );
        assert!(
            s.cnot > 1000,
            "multiplier_n45 should be sizeable: {}",
            s.cnot
        );
    }

    #[test]
    fn generators_are_seed_deterministic() {
        assert_eq!(gcm::generate(13, 7).gates(), gcm::generate(13, 7).gates());
        assert_ne!(gcm::generate(13, 7).gates(), gcm::generate(13, 8).gates());
    }

    #[test]
    fn factory_tiles_are_rotation_dominated() {
        let n = 12;
        let f = factory::factory_count(n);
        assert_eq!(f, 3);
        let c = factory::generate(n, 1);
        let mut rz = vec![0u32; n as usize];
        let mut cnot = vec![0u32; n as usize];
        for g in c.gates() {
            match g {
                rescq_circuit::Gate::Rz { qubit, .. } => rz[qubit.index()] += 1,
                rescq_circuit::Gate::Cnot { control, target } => {
                    cnot[control.index()] += 1;
                    cnot[target.index()] += 1;
                }
                _ => {}
            }
        }
        for q in 0..f as usize {
            // The engine's factory classifier requires ≥8 rotations and ≥4
            // per CNOT endpoint; the generator satisfies it by construction.
            assert!(rz[q] >= 8 && rz[q] >= 4 * cnot[q], "tile {q} not factory");
        }
        for q in f as usize..n as usize {
            assert!(
                rz[q] < 8 || rz[q] < 4 * cnot[q],
                "compute qubit {q} misclassified as factory"
            );
        }
        // Deterministic generation.
        assert_eq!(
            factory::generate(12, 5).gates(),
            factory::generate(12, 5).gates()
        );
        assert_ne!(
            factory::generate(12, 5).gates(),
            factory::generate(12, 6).gates()
        );
    }

    #[test]
    fn decoder_stress_is_bursty() {
        let c = decoder_stress::generate(8, 1);
        let s = c.stats();
        assert_eq!(
            s.rz as u32,
            8 * decoder_stress::BURST_LAYERS * decoder_stress::BURSTS
        );
        assert!(s.cnot > 0 && s.h > 0, "quiet stretches must entangle");
        assert_eq!(
            decoder_stress::generate(8, 1).gates(),
            decoder_stress::generate(8, 1).gates()
        );
    }
}
