//! Contribution 4: dynamically selecting the MST recomputation frequency.
//! The τ model (fit to §5.4.1's measurements) sizes `k` per grid so the
//! classical pipeline keeps a bounded number of computations in flight —
//! no manual tuning per hardware platform.
//!
//! ```sh
//! cargo run --release --example dynamic_k
//! ```

use rescq_repro::core::{KPolicy, TauModel};
use rescq_repro::sim::{simulate, SimConfig};

fn main() {
    let tau = TauModel::default();
    println!("dynamic k per grid size (max 2 in-flight computations):");
    for ancillas in [100usize, 1_000, 10_000, 100_000, 1_000_000] {
        let k = tau.solve_dynamic_k(ancillas, 2);
        println!(
            "  {ancillas:>9} ancillas → k = {k:>4} cycles (τ_MST ≈ {} cycles)",
            tau.tau_cycles(k, ancillas)
        );
    }

    let circuit = rescq_repro::workloads::generate("qft_n18", 1).expect("known benchmark");
    println!("\nqft_n18 with fixed vs dynamic k:");
    for policy in [
        KPolicy::Fixed(25),
        KPolicy::Fixed(200),
        KPolicy::Dynamic { max_concurrent: 2 },
    ] {
        let config = SimConfig::builder().k_policy(policy).seed(5).build();
        let report = simulate(&circuit, &config).expect("simulation runs");
        println!(
            "  {policy:?}: resolved k={} τ={} → {:.0} cycles ({} MST recomputations)",
            report.k_used,
            report.tau_used,
            report.total_cycles(),
            report.counters.mst_computations
        );
    }
}
