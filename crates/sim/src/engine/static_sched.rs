//! The static baseline engine: greedy [18] and AutoBraid [16] scheduling.
//!
//! Both baselines execute the dependency DAG layer by layer — "execution of
//! the next layer is stalled until the gate with the highest execution time
//! of the current layer is completed" (§3.1) — and use the naive Rz protocol:
//! exactly one designated ancilla per data qubit prepares `|mθ⟩`, preparation
//! starts only when the gate's layer begins (no eager prep), and an injection
//! failure restarts preparation from scratch with the doubled angle (§5.1,
//! Fig 1d).
//!
//! The two baselines differ in routing order within a layer: greedy routes in
//! program order with the current shortest free path; AutoBraid sorts the
//! layer's CNOTs by endpoint distance and routes them as an edge-disjoint
//! batch, which extracts more parallelism.

use crate::engine::shard::RegionPartition;
use crate::engine::EventQueue;
use crate::fabric::Fabric;
use crate::metrics::{ExecutionReport, LatencyHistogram, RunCounters};
use crate::{SimConfig, SimError};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rescq_circuit::{Angle, Circuit, DependencyDag, Gate, GateId, QubitId};
use rescq_core::{
    plan_static_route, LedgerEvent, QueueEntry, ReservationLedger, Role, SchedulerKind,
    StaticRouteOutcome, TaskId,
};
use rescq_decoder::{DecoderRuntime, WindowId};
use rescq_lattice::AncillaIndex;
use rescq_rus::{InjectionLadder, PreparationModel};
use rescq_telemetry::{Event as TraceEvent, Recorder};
use std::sync::Arc;

/// Per-gate state within the current layer.
#[derive(Debug)]
enum LayerGate {
    Hadamard {
        qubit: QubitId,
        running: bool,
    },
    Rz {
        qubit: QubitId,
        ladder: InjectionLadder,
        designated: AncillaIndex,
        phase: RzPhase,
    },
    Cnot {
        control: QubitId,
        target: QubitId,
        phase: CnotPhase,
    },
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RzPhase {
    NeedPrep,
    Prepping,
    ReadyToInject,
    Injecting,
}

#[derive(Debug, Clone, PartialEq)]
enum CnotPhase {
    NeedRoute,
    Rotating,
    /// Surgery in flight over this path (released at `SurgeryDone`).
    Surgery(Vec<AncillaIndex>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(clippy::enum_variant_names)] // the shared postfix is the point: each is a completion
enum Ev {
    HDone(usize),
    PrepDone(usize),
    InjectDone {
        idx: usize,
        helper: Option<AncillaIndex>,
        rounds: u32,
    },
    /// The classical decoder finished an injection's syndrome window; its
    /// outcome becomes visible to the ladder now.
    DecodeDone {
        idx: usize,
        success: bool,
        window: WindowId,
    },
    /// The classical decoder finished a preparation-verification window
    /// (`DecoderConfig::decode_prep`); the prepared state is usable now.
    PrepDecoded {
        idx: usize,
        window: WindowId,
    },
    RotationDone {
        idx: usize,
        qubit: QubitId,
    },
    SurgeryDone(usize),
}

/// Runs a static baseline schedule. `recorder` attaches a structured
/// trace sink (ledger claims/wait edges and ancilla occupancy; the
/// static engines have no phase loop, so no phase spans); `None` runs
/// untraced with zero instrumentation cost. Task ids in static-engine
/// events are per-layer slot indices, reused across layers.
pub(crate) fn run_static(
    circuit: &Circuit,
    dag: Arc<DependencyDag>,
    config: &SimConfig,
    kind: SchedulerKind,
    mut fabric: Fabric,
    mut rng: ChaCha8Rng,
    recorder: Option<&dyn Recorder>,
) -> Result<ExecutionReport, SimError> {
    let d = config.rounds_per_cycle();
    let prep_model = PreparationModel::with_calibration(config.rus_params(), config.calibration);
    let costs = config.costs;
    let max_rounds = config.max_cycles.saturating_mul(d as u64);

    let mut clock: u64 = 0;
    let mut counters = RunCounters::default();
    // Mirror of the realtime engine's reservation ledger: static baselines
    // never reorder (no preemption), but their designated-ancilla claims and
    // in-flight routes go through the same API so the wait-graph counters
    // are comparable across schedulers. Accounting only — no decision below
    // reads the ledger.
    let mut ledger = ReservationLedger::new(fabric.num_ancillas());
    // Occupancy/ledger tracing mirrors the realtime engine: the same
    // fabric-derived region partition, the same transition-only
    // AncillaState stream, all sampled from pure schedule state.
    let partition = RegionPartition::for_fabric(fabric.num_ancillas());
    let mut traced_occupancy = if recorder.is_some() {
        ledger.enable_event_log();
        vec![(0u32, false); fabric.num_ancillas()]
    } else {
        Vec::new()
    };
    let mut cnot_latency = LatencyHistogram::new();
    let mut rz_latency = LatencyHistogram::new();
    let mut decoder = DecoderRuntime::with_channel(&config.decoder, d, config.decoder_channel());
    let mut decode_latency = LatencyHistogram::new();
    let mut gates_executed = 0usize;
    let achieved_compression = fabric.layout.compression();

    for layer in dag.layers() {
        let layer_start = clock;
        let mut gates: Vec<(GateId, LayerGate)> = Vec::new();
        for &gid in layer {
            let gate = circuit.gate(gid);
            gates_executed += 1;
            if gate.is_free() {
                continue; // software gate: zero cycles
            }
            let state = match gate {
                Gate::H { qubit } => LayerGate::Hadamard {
                    qubit,
                    running: false,
                },
                Gate::Rz { qubit, angle } => {
                    let tile = fabric
                        .layout
                        .designated_prep_ancilla(qubit)
                        .ok_or(SimError::NoAncillaForQubit(qubit))?;
                    let designated = fabric
                        .graph
                        .index_of(tile)
                        .ok_or(SimError::NoAncillaForQubit(qubit))?;
                    LayerGate::Rz {
                        qubit,
                        ladder: InjectionLadder::new(angle),
                        designated,
                        phase: RzPhase::NeedPrep,
                    }
                }
                Gate::Cnot { control, target } => LayerGate::Cnot {
                    control,
                    target,
                    phase: CnotPhase::NeedRoute,
                },
                _ => unreachable!("free gates filtered above"),
            };
            gates.push((gid, state));
        }

        // AutoBraid sorts the layer's gates by routing distance; greedy keeps
        // program order.
        if kind == SchedulerKind::Autobraid {
            gates.sort_by_key(|(gid, s)| match s {
                LayerGate::Cnot {
                    control, target, ..
                } => {
                    let a = fabric.layout.data_tile(*control);
                    let b = fabric.layout.data_tile(*target);
                    (fabric.layout.grid().manhattan(a, b), gid.index())
                }
                _ => (0, gid.index()),
            });
        }

        // Register the layer's designated-ancilla claims with the ledger
        // (after the AutoBraid sort so task ids match slot indices). The
        // naive protocol claims its designated ancilla for the gate's whole
        // lifetime; two same-layer rotations sharing one ancilla show up as
        // a ledger wait edge.
        for (idx, (_, state)) in gates.iter().enumerate() {
            if let LayerGate::Rz {
                designated, ladder, ..
            } = state
            {
                ledger.push(
                    *designated,
                    QueueEntry::new(TaskId(idx as u32), Role::PrepZz, ladder.current_angle()),
                );
            }
        }

        let mut remaining = gates
            .iter()
            .filter(|(_, s)| !matches!(s, LayerGate::Done))
            .count();
        let mut events: EventQueue<Ev> = EventQueue::new();

        while remaining > 0 {
            // Dispatch pass: try to advance every unfinished gate.
            for i in 0..gates.len() {
                dispatch_gate(
                    i,
                    &mut gates,
                    &mut fabric,
                    &mut ledger,
                    &mut events,
                    &mut rng,
                    &prep_model,
                    &mut counters,
                    clock,
                    d,
                    &costs,
                )?;
            }
            drain_trace(
                recorder,
                &mut ledger,
                &fabric,
                &partition,
                &mut traced_occupancy,
                clock,
            );
            if remaining == 0 {
                break;
            }
            let Some((t, ev)) = events.pop() else {
                return Err(SimError::Deadlock {
                    round: clock,
                    detail: format!("layer stalled with {remaining} gates pending"),
                });
            };
            clock = t;
            if clock > max_rounds {
                return Err(SimError::WatchdogExceeded {
                    cycles: clock / d as u64,
                });
            }
            handle_event(
                ev,
                &mut gates,
                &mut fabric,
                &mut ledger,
                &mut events,
                &mut rng,
                &mut counters,
                &mut remaining,
                &mut cnot_latency,
                &mut rz_latency,
                &mut decoder,
                &mut decode_latency,
                layer_start,
                clock,
                d,
            );
        }
        // Catch the final completions of the layer (releases, pops).
        drain_trace(
            recorder,
            &mut ledger,
            &fabric,
            &partition,
            &mut traced_occupancy,
            clock,
        );
    }

    let dec = decoder.stats();
    debug_assert!(decoder.backlog().is_conserved());
    debug_assert_eq!(decoder.backlog().in_flight(), 0);
    counters.decode_windows = dec.windows_submitted;
    counters.decoder_stall_rounds = dec.stall_rounds;
    counters.decoder_peak_backlog = dec.peak_backlog;
    counters.decode_defects = dec.defects;
    counters.decode_growth_steps = dec.growth_steps;
    counters.decode_failures = dec.logical_failures;
    counters.waitgraph_peak_edges = ledger.stats().waitgraph_peak_edges;
    debug_assert_eq!(
        ledger.stats().preemptions,
        0,
        "static engines never preempt"
    );

    Ok(ExecutionReport {
        scheduler: kind,
        seed: config.seed,
        // The static baselines are layer-synchronous single-threaded loops;
        // `engine_threads` only shards the realtime engine.
        engine_threads: 1,
        distance: d,
        total_rounds: clock,
        gates_executed,
        cnot_latency,
        rz_latency,
        decode_latency,
        data_busy_rounds: fabric.total_qubit_busy_rounds(),
        num_qubits: circuit.num_qubits(),
        achieved_compression,
        k_used: 0,
        tau_used: 0,
        counters,
        // Static engines are untraced: no phase loop to time.
        phase_nanos: [0; 4],
    })
}

/// Forwards buffered ledger events (stamped with the current round) and
/// emits ancilla-occupancy transitions, mirroring the realtime engine's
/// `drain_ledger_events` + `sample_occupancy`. A no-op — one check —
/// when no recorder is attached.
fn drain_trace(
    recorder: Option<&dyn Recorder>,
    ledger: &mut ReservationLedger,
    fabric: &Fabric,
    partition: &RegionPartition,
    occupancy: &mut [(u32, bool)],
    round: u64,
) {
    let Some(rec) = recorder else { return };
    for ev in ledger.take_events() {
        rec.record(match ev {
            LedgerEvent::Claim {
                task,
                ancilla,
                cross_shard,
            } => TraceEvent::Claim {
                round,
                task: task.0 as u64,
                ancilla,
                cross_shard,
            },
            LedgerEvent::Preempted {
                task,
                ancilla,
                class_won,
            } => TraceEvent::Preemption {
                round,
                task: task.0 as u64,
                ancilla,
                class_won,
            },
            LedgerEvent::Rejected { task, ancilla } => TraceEvent::PreemptionRejected {
                round,
                task: task.0 as u64,
                ancilla,
            },
            LedgerEvent::WaitEdge {
                waiter,
                holder,
                ancilla,
            } => TraceEvent::WaitEdge {
                round,
                waiter: waiter.0 as u64,
                holder: holder.0 as u64,
                ancilla,
            },
        });
    }
    for a in 0..fabric.num_ancillas() as u32 {
        let busy = !fabric.ancilla_free(a, round);
        let depth = ledger.queue(a).len() as u32;
        let last = &mut occupancy[a as usize];
        if *last != (depth, busy) {
            *last = (depth, busy);
            rec.record(TraceEvent::AncillaState {
                round,
                ancilla: a,
                region: partition.region_of(a),
                depth,
                busy,
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_gate(
    idx: usize,
    gates: &mut [(GateId, LayerGate)],
    fabric: &mut Fabric,
    ledger: &mut ReservationLedger,
    events: &mut EventQueue<Ev>,
    rng: &mut ChaCha8Rng,
    prep_model: &PreparationModel,
    counters: &mut RunCounters,
    now: u64,
    d: u32,
    costs: &rescq_core::SurgeryCosts,
) -> Result<(), SimError> {
    // Split borrows: read geometry immutably, mutate the single state slot.
    let (_, ref mut state) = gates[idx];
    match state {
        LayerGate::Done => {}
        LayerGate::Hadamard { qubit, running } => {
            if !*running && fabric.qubit_free(*qubit, now) {
                let until = now + costs.hadamard_cycles as u64 * d as u64;
                fabric.occupy_qubit(*qubit, now, until);
                events.push(until, Ev::HDone(idx));
                *running = true;
            }
        }
        LayerGate::Rz {
            qubit,
            designated,
            phase,
            ..
        } => match *phase {
            RzPhase::NeedPrep => {
                let a = *designated;
                let owner = idx as u64;
                if fabric.ancilla_free(a, now) || fabric.is_held_by(a, owner) {
                    if !fabric.is_held_by(a, owner) {
                        fabric.hold_ancilla(a, owner);
                    }
                    let rounds = prep_model.sample_prep_rounds(rng);
                    counters.preps_started += 1;
                    events.push(now + rounds, Ev::PrepDone(idx));
                    *phase = RzPhase::Prepping;
                }
            }
            RzPhase::ReadyToInject => {
                let qubit = *qubit;
                let a = *designated;
                if !fabric.qubit_free(qubit, now) {
                    return Ok(());
                }
                let data = fabric.layout.data_tile(qubit);
                let a_tile = fabric.graph.tile(a);
                let orient = fabric.orientation[qubit.index()];
                let side = fabric.layout.grid().side_towards(data, a_tile);
                let (cycles, helper) = match side {
                    Some(s) if orient.edge_at(s) == rescq_lattice::EdgeType::Z => {
                        (costs.zz_injection_cycles, None)
                    }
                    Some(_) => (costs.cnot_injection_cycles, None),
                    None => {
                        // Diagonal prep ancilla: CNOT injection through a free
                        // side-adjacent helper touching both tiles.
                        let helper = fabric
                            .layout
                            .data_adjacency(qubit)
                            .side
                            .iter()
                            .filter_map(|&(_, t)| fabric.graph.index_of(t))
                            .find(|&h| {
                                fabric.ancilla_free(h, now)
                                    && fabric.graph.neighbors(h).contains(&a)
                            });
                        match helper {
                            Some(h) => (costs.cnot_injection_cycles, Some(h)),
                            None => {
                                // All geometric helpers held by other preps →
                                // solo fallback keeps the run live; merely
                                // busy helpers → wait.
                                let any_transiently_busy = fabric
                                    .layout
                                    .data_adjacency(qubit)
                                    .side
                                    .iter()
                                    .filter_map(|&(_, t)| fabric.graph.index_of(t))
                                    .any(|h| !fabric.is_held(h) && !fabric.ancilla_free(h, now));
                                if any_transiently_busy {
                                    return Ok(());
                                }
                                (costs.cnot_injection_cycles, None)
                            }
                        }
                    }
                };
                let until = now + cycles as u64 * d as u64;
                fabric.occupy_qubit(qubit, now, until);
                if let Some(h) = helper {
                    fabric.occupy_ancilla(h, now, until);
                }
                counters.injections += 1;
                events.push(
                    until,
                    Ev::InjectDone {
                        idx,
                        helper,
                        rounds: (until - now) as u32,
                    },
                );
                *phase = RzPhase::Injecting;
            }
            RzPhase::Prepping | RzPhase::Injecting => {}
        },
        LayerGate::Cnot {
            control,
            target,
            phase,
        } => {
            if *phase != CnotPhase::NeedRoute {
                return Ok(());
            }
            let (control, target) = (*control, *target);
            if !fabric.qubit_free(control, now) || !fabric.qubit_free(target, now) {
                return Ok(());
            }
            let outcome = plan_static_route(
                &fabric.layout,
                &fabric.graph,
                control,
                target,
                &fabric.orientation,
                |a| !fabric.ancilla_free(a, now),
            );
            match outcome {
                StaticRouteOutcome::Route { path } => {
                    let until = now + costs.cnot_cycles as u64 * d as u64;
                    fabric.occupy_qubit(control, now, until);
                    fabric.occupy_qubit(target, now, until);
                    for &a in &path {
                        fabric.occupy_ancilla(a, now, until);
                        ledger.push(
                            a,
                            QueueEntry::new(TaskId(idx as u32), Role::Route, Angle::ZERO),
                        );
                    }
                    counters.cnot_surgeries += 1;
                    events.push(until, Ev::SurgeryDone(idx));
                    *phase = CnotPhase::Surgery(path);
                }
                StaticRouteOutcome::NeedRotation { qubit, using } => {
                    let until = now + costs.edge_rotation_cycles as u64 * d as u64;
                    fabric.occupy_qubit(qubit, now, until);
                    fabric.occupy_ancilla(using, now, until);
                    counters.edge_rotations += 1;
                    events.push(until, Ev::RotationDone { idx, qubit });
                    *phase = CnotPhase::Rotating;
                }
                StaticRouteOutcome::Blocked => {}
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_event(
    ev: Ev,
    gates: &mut [(GateId, LayerGate)],
    fabric: &mut Fabric,
    ledger: &mut ReservationLedger,
    events: &mut EventQueue<Ev>,
    rng: &mut ChaCha8Rng,
    counters: &mut RunCounters,
    remaining: &mut usize,
    cnot_latency: &mut LatencyHistogram,
    rz_latency: &mut LatencyHistogram,
    decoder: &mut DecoderRuntime,
    decode_latency: &mut LatencyHistogram,
    layer_start: u64,
    now: u64,
    d: u32,
) {
    let latency_cycles = (now - layer_start).div_ceil(d as u64);
    match ev {
        Ev::HDone(idx) => {
            if let (_, LayerGate::Hadamard { qubit, .. }) = &gates[idx] {
                fabric.flip_orientation(*qubit);
            }
            gates[idx].1 = LayerGate::Done;
            *remaining -= 1;
        }
        Ev::PrepDone(idx) => {
            // With `decode_prep` on, the verification measurement's window
            // must be decoded before the state counts as prepared.
            if decoder.decodes_prep() {
                let tile = match &gates[idx].1 {
                    LayerGate::Rz { designated, .. } => *designated,
                    _ => 0,
                };
                let (window, ready_at) = decoder.submit(tile, d, now);
                if ready_at > now {
                    events.push(ready_at, Ev::PrepDecoded { idx, window });
                    return;
                }
                decode_latency.record(decoder.retire(window, now));
            }
            counters.preps_succeeded += 1;
            if let (_, LayerGate::Rz { phase, .. }) = &mut gates[idx] {
                *phase = RzPhase::ReadyToInject;
            }
        }
        Ev::PrepDecoded { idx, window } => {
            decode_latency.record(decoder.retire(window, now));
            counters.preps_succeeded += 1;
            if let (_, LayerGate::Rz { phase, .. }) = &mut gates[idx] {
                *phase = RzPhase::ReadyToInject;
            }
        }
        Ev::InjectDone { idx, rounds, .. } => {
            // The measurement happens now; the outcome is visible to the
            // ladder only once its syndrome window is decoded.
            let success = rng.gen_bool(0.5);
            if !success {
                counters.injection_failures += 1;
            }
            let tile = match &gates[idx].1 {
                LayerGate::Rz { designated, .. } => *designated,
                _ => 0,
            };
            let (window, ready_at) = decoder.submit(tile, rounds.max(1), now);
            if ready_at > now {
                events.push(
                    ready_at,
                    Ev::DecodeDone {
                        idx,
                        success,
                        window,
                    },
                );
            } else {
                decode_latency.record(decoder.retire(window, now));
                apply_rz_outcome(
                    idx,
                    success,
                    gates,
                    fabric,
                    ledger,
                    remaining,
                    rz_latency,
                    latency_cycles,
                    now,
                );
            }
        }
        Ev::DecodeDone {
            idx,
            success,
            window,
        } => {
            decode_latency.record(decoder.retire(window, now));
            apply_rz_outcome(
                idx,
                success,
                gates,
                fabric,
                ledger,
                remaining,
                rz_latency,
                latency_cycles,
                now,
            );
        }
        Ev::RotationDone { idx, qubit } => {
            fabric.flip_orientation(qubit);
            if let (_, LayerGate::Cnot { phase, .. }) = &mut gates[idx] {
                *phase = CnotPhase::NeedRoute;
            }
        }
        Ev::SurgeryDone(idx) => {
            if let (
                _,
                LayerGate::Cnot {
                    phase: CnotPhase::Surgery(path),
                    ..
                },
            ) = &gates[idx]
            {
                for &a in path {
                    ledger.remove_task(a, TaskId(idx as u32));
                }
            }
            cnot_latency.record(latency_cycles);
            gates[idx].1 = LayerGate::Done;
            *remaining -= 1;
        }
    }
}

/// Advances an Rz ladder with a decoded injection outcome.
#[allow(clippy::too_many_arguments)]
fn apply_rz_outcome(
    idx: usize,
    success: bool,
    gates: &mut [(GateId, LayerGate)],
    fabric: &mut Fabric,
    ledger: &mut ReservationLedger,
    remaining: &mut usize,
    rz_latency: &mut LatencyHistogram,
    latency_cycles: u64,
    now: u64,
) {
    if let (
        _,
        LayerGate::Rz {
            ladder,
            designated,
            phase,
            ..
        },
    ) = &mut gates[idx]
    {
        match ladder.record_outcome(success) {
            rescq_rus::LadderStep::Done => {
                fabric.release_ancilla(*designated, now);
                ledger.remove_task(*designated, TaskId(idx as u32));
                rz_latency.record(latency_cycles);
                gates[idx].1 = LayerGate::Done;
                *remaining -= 1;
            }
            rescq_rus::LadderStep::NeedCorrection(_) => {
                // Naive protocol: restart preparation from scratch for the
                // doubled angle on the same ancilla.
                *phase = RzPhase::NeedPrep;
            }
        }
    }
}
