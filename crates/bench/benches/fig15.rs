//! Figure 15: example 8-qubit grids at each compression level.

use rescq_bench::print_header;
use rescq_lattice::{Layout, LayoutKind};

fn main() {
    print_header(
        "Figure 15 — grids of 8 data qubits at different compressions",
        "D = data qubit, . = ancilla, blank = removed by compression",
    );
    for comp in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut layout = Layout::new(LayoutKind::Star2x2, 8).unwrap();
        let achieved = layout.compress(comp, 42);
        println!(
            "requested {:.0}% → achieved {:.0}% (ancilla/data = {:.2}):",
            comp * 100.0,
            achieved * 100.0,
            layout.ancilla_ratio()
        );
        println!("{}", layout.render_ascii());
    }
}
