//! `|mθ⟩` injection strategies and the repeat-until-success correction ladder
//! (paper §3.2, Table 1, Eq. 1, Fig 6).
//!
//! Injecting `|mθ⟩` into a data qubit applies `Rz(±θ)` with equal probability;
//! a −θ outcome is repaired by executing `Rz(2θ)`, itself via injection of
//! `|m2θ⟩`, and so on. The ladder terminates early when some `Rz(2^k·θ)` is a
//! Clifford (applied in software), which is why dyadic angles such as `T`
//! average *fewer* than 2 injections (Eq. 1's remark).

use rescq_circuit::Angle;
use std::fmt;

/// The two injection circuits of Fig 6 with their Table 1 costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionStrategy {
    /// Fig 6a: `Z⊗Z` Pauli measurement through the data qubit's **Z** edge —
    /// 1 ancilla, 1 lattice-surgery cycle.
    Zz,
    /// Fig 6b: CNOT between the prep ancilla and the data qubit through the
    /// data qubit's **X** edge — 2 ancillas, 2 lattice-surgery cycles.
    Cnot,
}

impl InjectionStrategy {
    /// Lattice-surgery cycles of the injection (Table 1).
    pub fn cycles(self) -> u32 {
        match self {
            InjectionStrategy::Zz => 1,
            InjectionStrategy::Cnot => 2,
        }
    }

    /// Ancilla tiles required, including the prep ancilla (Table 1).
    pub fn ancillas_required(self) -> u32 {
        match self {
            InjectionStrategy::Zz => 1,
            InjectionStrategy::Cnot => 2,
        }
    }

    /// Name of the data-qubit edge the strategy attaches to (Table 1).
    pub fn exposed_edge_name(self) -> &'static str {
        match self {
            InjectionStrategy::Zz => "Z",
            InjectionStrategy::Cnot => "X",
        }
    }
}

impl fmt::Display for InjectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionStrategy::Zz => f.write_str("ZZ"),
            InjectionStrategy::Cnot => f.write_str("CNOT"),
        }
    }
}

/// Result of feeding one measurement outcome to the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LadderStep {
    /// The rotation completed (successful injection, or the correction became
    /// Clifford and was applied in software).
    Done,
    /// The injection failed; the next correction state `|m(2θ)⟩` must be
    /// prepared and injected.
    NeedCorrection(Angle),
}

/// The RUS correction ladder for one `Rz(θ)` gate.
///
/// # Example
///
/// ```
/// use rescq_circuit::Angle;
/// use rescq_rus::{InjectionLadder, LadderStep};
///
/// // A T gate: a single failure makes the correction Clifford.
/// let mut ladder = InjectionLadder::new(Angle::T);
/// assert_eq!(ladder.record_outcome(false), LadderStep::Done);
/// assert!(ladder.is_complete());
///
/// // A generic angle keeps doubling.
/// let mut ladder = InjectionLadder::new(Angle::radians(0.3));
/// match ladder.record_outcome(false) {
///     LadderStep::NeedCorrection(next) => {
///         assert!((next.to_radians() - 0.6).abs() < 1e-12)
///     }
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionLadder {
    current: Angle,
    injections: u32,
    complete: bool,
}

impl InjectionLadder {
    /// Starts a ladder for `Rz(angle)`. Clifford angles complete immediately
    /// (zero injections — the gate is software).
    pub fn new(angle: Angle) -> Self {
        InjectionLadder {
            current: angle,
            injections: 0,
            complete: angle.is_clifford(),
        }
    }

    /// The angle whose `|mθ⟩` state must be injected next.
    pub fn current_angle(&self) -> Angle {
        self.current
    }

    /// The correction angle needed if the *next* injection fails (what RESCQ
    /// eagerly prepares during the injection, Fig 1e).
    pub fn next_correction_angle(&self) -> Angle {
        self.current.double()
    }

    /// Number of injections performed so far.
    pub fn injections(&self) -> u32 {
        self.injections
    }

    /// Whether the rotation has completed.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Records the measurement outcome of an injection of the current angle.
    ///
    /// # Panics
    ///
    /// Panics if the ladder already completed.
    pub fn record_outcome(&mut self, success: bool) -> LadderStep {
        assert!(!self.complete, "ladder already complete");
        self.injections += 1;
        if success {
            self.complete = true;
            return LadderStep::Done;
        }
        let next = self.current.double();
        if next.is_clifford() {
            // The correction is a software gate: done.
            self.complete = true;
            LadderStep::Done
        } else {
            self.current = next;
            LadderStep::NeedCorrection(next)
        }
    }
}

/// Expected number of injections for `Rz(angle)` (Eq. 1 and its Clifford
/// refinement): exactly 2 for generic angles, `Σ_{i<m} i·2⁻ⁱ + m·2⁻⁽ᵐ⁻¹⁾` for
/// a dyadic angle that reaches Clifford after `m` doublings, 0 for Clifford.
pub fn expected_injections(angle: Angle) -> f64 {
    match angle.doublings_to_clifford() {
        Some(0) => 0.0,
        Some(m) => {
            let m = m as f64;
            // Σ_{i=1}^{m-1} i/2^i + m/2^(m-1)
            let mut sum = 0.0;
            let mut i = 1.0;
            while i < m {
                sum += i / 2f64.powf(i);
                i += 1.0;
            }
            sum + m / 2f64.powf(m - 1.0)
        }
        None => 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table1_costs() {
        assert_eq!(InjectionStrategy::Zz.cycles(), 1);
        assert_eq!(InjectionStrategy::Zz.ancillas_required(), 1);
        assert_eq!(InjectionStrategy::Zz.exposed_edge_name(), "Z");
        assert_eq!(InjectionStrategy::Cnot.cycles(), 2);
        assert_eq!(InjectionStrategy::Cnot.ancillas_required(), 2);
        assert_eq!(InjectionStrategy::Cnot.exposed_edge_name(), "X");
    }

    #[test]
    fn clifford_angle_completes_instantly() {
        let ladder = InjectionLadder::new(Angle::S);
        assert!(ladder.is_complete());
        assert_eq!(ladder.injections(), 0);
        assert_eq!(expected_injections(Angle::S), 0.0);
    }

    #[test]
    fn t_gate_single_injection() {
        // T: success → done; failure → correction is S (Clifford) → done.
        for outcome in [true, false] {
            let mut ladder = InjectionLadder::new(Angle::T);
            assert_eq!(ladder.record_outcome(outcome), LadderStep::Done);
            assert_eq!(ladder.injections(), 1);
        }
        assert_eq!(expected_injections(Angle::T), 1.0);
    }

    #[test]
    fn generic_angle_expected_two() {
        assert_eq!(expected_injections(Angle::radians(0.3)), 2.0);
    }

    #[test]
    fn dyadic_expectation_interpolates() {
        // m = 2 (π/8): E = 1·1/2 + 2·1/2 = 1.5
        assert!((expected_injections(Angle::dyadic_pi(1, 3)) - 1.5).abs() < 1e-12);
        // m → ∞ tends to 2.
        let e = expected_injections(Angle::dyadic_pi(1, 40));
        assert!((e - 2.0).abs() < 1e-9);
        // Monotone in m.
        let mut last = 0.0;
        for k in 2..12 {
            let e = expected_injections(Angle::dyadic_pi(1, k));
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn ladder_follows_doubling() {
        let mut ladder = InjectionLadder::new(Angle::dyadic_pi(1, 4)); // π/16
        assert_eq!(
            ladder.record_outcome(false),
            LadderStep::NeedCorrection(Angle::dyadic_pi(1, 3))
        );
        assert_eq!(
            ladder.record_outcome(false),
            LadderStep::NeedCorrection(Angle::T)
        );
        // Failing the T injection leaves an S correction: free, complete.
        assert_eq!(ladder.record_outcome(false), LadderStep::Done);
        assert_eq!(ladder.injections(), 3);
    }

    #[test]
    fn monte_carlo_injection_count_matches_eq1() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 40_000;
        let mut total = 0u64;
        for _ in 0..n {
            let mut ladder = InjectionLadder::new(Angle::radians(0.7));
            while !ladder.is_complete() {
                ladder.record_outcome(rng.gen_bool(0.5));
            }
            total += ladder.injections() as u64;
        }
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "Eq. 1 expectation: {mean}");
    }

    #[test]
    #[should_panic(expected = "already complete")]
    fn outcome_after_completion_panics() {
        let mut ladder = InjectionLadder::new(Angle::T);
        ladder.record_outcome(true);
        ladder.record_outcome(true);
    }
}
