//! The pipelined, stale-tolerant MST recomputation of §4.2/Fig 8 and the
//! dynamic recomputation-frequency selection of contribution 4.
//!
//! A new MST computation starts every `k` cycles and takes `τ_MST` cycles of
//! classical compute, during which the quantum program keeps running against
//! the latest *completed* tree — the scheduler never stalls on classical
//! work, at the price of using activity data that is up to `k + τ` cycles
//! stale (§5.2.3 shows this costs almost nothing).
//!
//! `τ_MST` is modelled from §5.4.1's measurements (≈ 92 µs for a 100×100 grid
//! and ≈ 330 µs for 1000×1000 at `k = 200`, with 1 µs lattice-surgery
//! cycles): `τ(k, n) = a·k + b·√n` fitted through both points. The
//! [`KPolicy::Dynamic`] mode inverts this model to pick the smallest `k` that
//! keeps the number of in-flight computations bounded — the paper's
//! "dynamically selects the frequency of realtime updates".
//!
//! Determinism contract: the pipeline is driven solely by the cycle counter
//! its caller passes to [`MstPipeline::on_cycle`] — completion times are
//! modelled, never measured — so schedules that consult the tree are
//! reproducible run-to-run and independent of host speed or thread count.

use rescq_lattice::IncrementalMst;
use std::collections::VecDeque;

/// How the MST recomputation period `k` is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KPolicy {
    /// Fixed period in cycles (the paper evaluates k ∈ {25, 50, 100, 200}).
    Fixed(u32),
    /// Pick the smallest `k` such that at most `max_concurrent` computations
    /// are ever in flight: `k ≥ τ(k, n) / max_concurrent`, solved from the
    /// τ model. This adapts to grid size and measurement latency without
    /// manual tuning (contribution 4).
    Dynamic {
        /// Upper bound on concurrently running MST computations.
        max_concurrent: u32,
    },
}

impl Default for KPolicy {
    fn default() -> Self {
        KPolicy::Fixed(25)
    }
}

/// The fitted classical-latency model `τ(k, n) = a·k + b·√n` in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauModel {
    /// Cycles per unit of `k` (edge-update batch size).
    pub per_k: f64,
    /// Cycles per `√n` (grid dimension).
    pub per_sqrt_n: f64,
}

impl Default for TauModel {
    /// Fit through §5.4.1's two measurements (see `DESIGN.md` §4.5).
    fn default() -> Self {
        TauModel {
            per_k: 0.328,
            per_sqrt_n: 0.264,
        }
    }
}

impl TauModel {
    /// `τ_MST` in cycles for period `k` on an `n`-ancilla grid (≥ 1).
    pub fn tau_cycles(&self, k: u32, num_ancillas: usize) -> u32 {
        let t = self.per_k * k as f64 + self.per_sqrt_n * (num_ancillas as f64).sqrt();
        t.ceil().max(1.0) as u32
    }

    /// Solves the dynamic-k fixed point `k = ⌈τ(k, n) / max_concurrent⌉`.
    pub fn solve_dynamic_k(&self, num_ancillas: usize, max_concurrent: u32) -> u32 {
        let mut k = 1u32;
        for _ in 0..64 {
            let tau = self.tau_cycles(k, num_ancillas);
            let next = tau.div_ceil(max_concurrent).max(1);
            if next == k {
                break;
            }
            k = next;
        }
        k
    }
}

/// An in-flight MST computation: the weight snapshot it read and when it
/// completes.
#[derive(Debug, Clone)]
struct InFlight {
    completes_at_cycle: u64,
    /// Recycled through [`MstPipeline::spare_weights`] on completion, so
    /// steady-state snapshots reuse capacity instead of allocating.
    weights: Vec<u32>,
}

/// The pipelined dynamic MST (Fig 8).
///
/// # Example
///
/// ```
/// use rescq_core::{KPolicy, MstPipeline, TauModel};
///
/// // A 2×2 ancilla square.
/// let edges = vec![(0, 1), (1, 3), (3, 2), (2, 0)];
/// let mut mst = MstPipeline::new(4, &edges, KPolicy::Fixed(25), TauModel::default());
/// assert_eq!(mst.k(), 25);
/// assert_eq!(mst.current().tree_size(), 3);
///
/// // Drive cycles with a weight snapshot provider that fills the
/// // pipeline's recycled buffer; the tree lags by τ.
/// for cycle in 0..200 {
///     mst.on_cycle(cycle, |_edges, out| out.resize(4, 0));
/// }
/// assert!(mst.generation() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MstPipeline {
    edges: Vec<(u32, u32)>,
    k: u32,
    tau: u32,
    current: IncrementalMst,
    in_flight: VecDeque<InFlight>,
    /// Capacity-retaining weight buffers recycled from completed
    /// computations (bounded by the in-flight high-water mark).
    spare_weights: Vec<Vec<u32>>,
    generation: u64,
    completed_computations: u64,
    incremental_updates: u64,
}

impl MstPipeline {
    /// Creates the pipeline over the ancilla graph's edge list; the initial
    /// tree uses all-zero weights (no history yet).
    pub fn new(
        num_nodes: usize,
        edges: &[(u32, u32)],
        policy: KPolicy,
        tau_model: TauModel,
    ) -> Self {
        let k = match policy {
            KPolicy::Fixed(k) => k.max(1),
            KPolicy::Dynamic { max_concurrent } => {
                tau_model.solve_dynamic_k(num_nodes, max_concurrent.max(1))
            }
        };
        let tau = tau_model.tau_cycles(k, num_nodes);
        let weighted: Vec<(u32, u32, u32)> = edges.iter().map(|&(a, b)| (a, b, 0)).collect();
        MstPipeline {
            edges: edges.to_vec(),
            k,
            tau,
            current: IncrementalMst::new(num_nodes, &weighted),
            in_flight: VecDeque::new(),
            spare_weights: Vec::new(),
            generation: 0,
            completed_computations: 0,
            incremental_updates: 0,
        }
    }

    /// The resolved recomputation period in cycles.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The modelled computation latency in cycles.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// The latest *completed* tree — what Algorithm 1 routes against.
    pub fn current(&self) -> &IncrementalMst {
        &self.current
    }

    /// Monotone generation counter; bumps when a computation completes
    /// (used to invalidate the path cache).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of completed MST computations.
    pub fn completed_computations(&self) -> u64 {
        self.completed_computations
    }

    /// Total incremental edge updates applied (§5.4.1's workload measure).
    pub fn incremental_updates(&self) -> u64 {
        self.incremental_updates
    }

    /// Number of computations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Advances the pipeline at a cycle boundary. `snapshot` fills the
    /// provided (cleared, capacity-retaining) buffer with the current edge
    /// weights when a new computation starts (it reads the activity
    /// tracker); completions are applied in order. At steady state the
    /// weight buffers cycle between in-flight computations and the spare
    /// pool without touching the allocator.
    pub fn on_cycle(&mut self, cycle: u64, snapshot: impl FnOnce(&[(u32, u32)], &mut Vec<u32>)) {
        // Start a new computation every k cycles (including cycle 0).
        if cycle.is_multiple_of(self.k as u64) {
            let mut weights = self.spare_weights.pop().unwrap_or_default();
            weights.clear();
            snapshot(&self.edges, &mut weights);
            debug_assert_eq!(weights.len(), self.edges.len());
            self.in_flight.push_back(InFlight {
                completes_at_cycle: cycle + self.tau as u64,
                weights,
            });
        }
        // Apply any computations that have completed by now.
        while self
            .in_flight
            .front()
            .is_some_and(|f| f.completes_at_cycle <= cycle)
        {
            let f = self.in_flight.pop_front().expect("checked non-empty");
            for (eid, &w) in f.weights.iter().enumerate() {
                if self.current.weight(eid as u32) != w {
                    self.current.update_weight(eid as u32, w);
                    self.incremental_updates += 1;
                }
            }
            self.spare_weights.push(f.weights);
            self.generation += 1;
            self.completed_computations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_edges() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 3), (3, 2), (2, 0)]
    }

    #[test]
    fn pipeline_lags_by_tau() {
        let tau_model = TauModel {
            per_k: 1.0,
            per_sqrt_n: 0.0,
        };
        // k = 10 → τ = 10 cycles.
        let mut mst = MstPipeline::new(4, &square_edges(), KPolicy::Fixed(10), tau_model);
        assert_eq!(mst.tau(), 10);
        // Weights that would change the tree are visible only after τ.
        let weights = vec![50, 0, 0, 0];
        mst.on_cycle(0, |_, out| out.extend_from_slice(&weights));
        assert_eq!(mst.generation(), 0, "not yet complete");
        assert!(mst.current().contains_edge(0), "still the stale tree");
        for c in 1..10 {
            mst.on_cycle(c, |_, out| out.extend_from_slice(&weights));
        }
        mst.on_cycle(10, |_, out| out.extend_from_slice(&weights));
        assert_eq!(mst.generation(), 1);
        assert!(!mst.current().contains_edge(0), "expensive edge evicted");
    }

    #[test]
    fn multiple_in_flight() {
        let tau_model = TauModel {
            per_k: 2.0,
            per_sqrt_n: 0.0,
        };
        // k = 25 → τ = 50: two computations overlap (Fig 8's example).
        let mut mst = MstPipeline::new(4, &square_edges(), KPolicy::Fixed(25), tau_model);
        assert_eq!(mst.tau(), 50);
        for c in 0..=49 {
            mst.on_cycle(c, |_, out| out.resize(4, 0));
        }
        assert_eq!(mst.in_flight(), 2);
        mst.on_cycle(50, |_, out| out.resize(4, 0));
        assert_eq!(mst.generation(), 1);
        assert_eq!(mst.in_flight(), 2); // one completed, one started at 50
    }

    #[test]
    fn dynamic_k_scales_with_grid() {
        let m = TauModel::default();
        let k_small = m.solve_dynamic_k(100, 2);
        let k_large = m.solve_dynamic_k(1_000_000, 2);
        assert!(k_small >= 1);
        assert!(
            k_large > k_small,
            "bigger grids need longer periods: {k_small} vs {k_large}"
        );
        // The fixed point holds: τ(k)/2 ≤ k.
        let tau = m.tau_cycles(k_large, 1_000_000);
        assert!(tau.div_ceil(2) <= k_large);
    }

    #[test]
    fn tau_model_matches_paper_measurements() {
        let m = TauModel::default();
        // §5.4.1: ≈92 cycles for a 100×100 grid at k=200.
        let t1 = m.tau_cycles(200, 100 * 100);
        assert!((85..=100).contains(&t1), "100x100: {t1}");
        // ≈330 cycles for 1000×1000 at k=200.
        let t2 = m.tau_cycles(200, 1000 * 1000);
        assert!((310..=350).contains(&t2), "1000x1000: {t2}");
    }

    #[test]
    fn incremental_update_counter() {
        let tau_model = TauModel {
            per_k: 0.1,
            per_sqrt_n: 0.0,
        };
        let mut mst = MstPipeline::new(4, &square_edges(), KPolicy::Fixed(1), tau_model);
        mst.on_cycle(0, |_, out| out.extend([1, 2, 3, 4]));
        mst.on_cycle(1, |_, out| out.extend([1, 2, 3, 4]));
        assert!(mst.completed_computations() >= 1);
        assert_eq!(mst.incremental_updates(), 4);
        // Same weights again: no updates.
        mst.on_cycle(2, |_, out| out.extend([1, 2, 3, 4]));
        assert_eq!(mst.incremental_updates(), 4);
    }
}
