//! Shared runtime state of the surface-code fabric during a simulation:
//! busy windows for data qubits and ancillas, patch orientations, and
//! per-cycle ancilla activity flags.

use rescq_circuit::QubitId;
use rescq_lattice::{AncillaGraph, AncillaIndex, Layout, Orientation};
use std::sync::Arc;

/// Mutable fabric state threaded through an engine run.
///
/// The static geometry (`layout`, `graph`) is held behind [`Arc`]s so sweep
/// runners can share one build across many concurrent runs; everything
/// mutable is per-run.
#[derive(Debug)]
pub struct Fabric {
    /// The static layout (tiles, blocks, adjacency), shared read-only.
    pub layout: Arc<Layout>,
    /// Dense-indexed ancilla routing graph, shared read-only.
    pub graph: Arc<AncillaGraph>,
    /// Rounds per lattice-surgery cycle (`d`).
    pub rounds_per_cycle: u32,
    /// Per-qubit patch orientation (flips on H and edge rotation).
    pub orientation: Vec<Orientation>,
    qubit_free_at: Vec<u64>,
    ancilla_free_at: Vec<u64>,
    /// Accumulated busy rounds per data qubit (for idle fractions).
    qubit_busy_rounds: Vec<u64>,
    /// Whether each ancilla was active at some point in the current cycle.
    active_this_cycle: Vec<bool>,
    /// Ancillas currently *held* (claimed open-ended, e.g. holding a prepared
    /// state) and by whom; counted as active every cycle until released.
    held: Vec<Option<u64>>,
    /// Double buffer for [`Self::end_cycle_activity`]: the finished cycle's
    /// flags are assembled here while `active_this_cycle` is rewound to the
    /// carry-over set, so ending a cycle allocates nothing.
    activity_scratch: Vec<bool>,
}

impl Fabric {
    /// Builds the runtime state over a shared layout and its routing graph
    /// (`graph` must be `AncillaGraph::from_grid(layout.grid())`).
    pub fn new(layout: Arc<Layout>, graph: Arc<AncillaGraph>, rounds_per_cycle: u32) -> Self {
        let nq = layout.num_qubits() as usize;
        let na = graph.len();
        Fabric {
            layout,
            graph,
            rounds_per_cycle,
            orientation: vec![Orientation::Standard; nq],
            qubit_free_at: vec![0; nq],
            ancilla_free_at: vec![0; na],
            qubit_busy_rounds: vec![0; nq],
            active_this_cycle: vec![false; na],
            held: vec![None; na],
            activity_scratch: vec![false; na],
        }
    }

    /// Number of ancillas.
    pub fn num_ancillas(&self) -> usize {
        self.ancilla_free_at.len()
    }

    /// Number of data qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubit_free_at.len()
    }

    /// Whether qubit `q` is free at round `now`.
    pub fn qubit_free(&self, q: QubitId, now: u64) -> bool {
        self.qubit_free_at[q.index()] <= now
    }

    /// Whether ancilla `a` is free at round `now` (not busy and not held).
    pub fn ancilla_free(&self, a: AncillaIndex, now: u64) -> bool {
        self.held[a as usize].is_none() && self.ancilla_free_at[a as usize] <= now
    }

    /// The round ancilla `a` frees up (`u64::MAX` while held).
    pub fn ancilla_free_at(&self, a: AncillaIndex) -> u64 {
        if self.held[a as usize].is_some() {
            u64::MAX
        } else {
            self.ancilla_free_at[a as usize]
        }
    }

    /// Occupies qubit `q` for `[now, until)` and accrues its busy time.
    pub fn occupy_qubit(&mut self, q: QubitId, now: u64, until: u64) {
        debug_assert!(self.qubit_free(q, now), "qubit {q} double-booked");
        self.qubit_free_at[q.index()] = until;
        self.qubit_busy_rounds[q.index()] += until - now;
    }

    /// Occupies ancilla `a` for `[now, until)` and marks it active.
    pub fn occupy_ancilla(&mut self, a: AncillaIndex, now: u64, until: u64) {
        debug_assert!(self.ancilla_free(a, now), "ancilla {a} double-booked");
        self.ancilla_free_at[a as usize] = until;
        self.active_this_cycle[a as usize] = true;
    }

    /// Claims ancilla `a` open-endedly (preparing / holding a state) on
    /// behalf of `owner`.
    pub fn hold_ancilla(&mut self, a: AncillaIndex, owner: u64) {
        debug_assert!(self.held[a as usize].is_none(), "ancilla {a} already held");
        self.held[a as usize] = Some(owner);
        self.active_this_cycle[a as usize] = true;
    }

    /// Releases a held ancilla at round `now`.
    pub fn release_ancilla(&mut self, a: AncillaIndex, now: u64) {
        self.held[a as usize] = None;
        self.ancilla_free_at[a as usize] = self.ancilla_free_at[a as usize].max(now);
    }

    /// Whether ancilla `a` is currently held (by anyone).
    pub fn is_held(&self, a: AncillaIndex) -> bool {
        self.held[a as usize].is_some()
    }

    /// Whether ancilla `a` is held by `owner`.
    pub fn is_held_by(&self, a: AncillaIndex, owner: u64) -> bool {
        self.held[a as usize] == Some(owner)
    }

    /// Flips the patch orientation of `q` (Hadamard or edge rotation).
    pub fn flip_orientation(&mut self, q: QubitId) {
        let o = &mut self.orientation[q.index()];
        *o = o.flipped();
    }

    /// Total busy rounds accumulated across all data qubits.
    pub fn total_qubit_busy_rounds(&self) -> u64 {
        self.qubit_busy_rounds.iter().sum()
    }

    /// Ends a cycle: returns the per-ancilla activity flags (true if the
    /// ancilla was busy or held at any point during it) and resets them for
    /// the next cycle. The returned slice is a double buffer valid until
    /// the next call — no allocation per cycle.
    pub fn end_cycle_activity(&mut self, cycle_end_round: u64) -> &[bool] {
        for i in 0..self.active_this_cycle.len() {
            // Ancillas still busy across the boundary stay active next cycle.
            let carry = self.held[i].is_some() || self.ancilla_free_at[i] > cycle_end_round;
            self.activity_scratch[i] = self.active_this_cycle[i] || carry;
            self.active_this_cycle[i] = carry;
        }
        &self.activity_scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescq_lattice::LayoutKind;

    fn fabric() -> Fabric {
        let layout = Arc::new(Layout::new(LayoutKind::Star2x2, 4).unwrap());
        let graph = Arc::new(AncillaGraph::from_grid(layout.grid()));
        Fabric::new(layout, graph, 7)
    }

    #[test]
    fn occupancy_windows() {
        let mut f = fabric();
        let q = QubitId(0);
        assert!(f.qubit_free(q, 0));
        f.occupy_qubit(q, 0, 14);
        assert!(!f.qubit_free(q, 13));
        assert!(f.qubit_free(q, 14));
        assert_eq!(f.total_qubit_busy_rounds(), 14);
    }

    #[test]
    fn hold_and_release() {
        let mut f = fabric();
        assert!(f.ancilla_free(0, 0));
        f.hold_ancilla(0, 42);
        assert!(!f.ancilla_free(0, 1000));
        assert!(f.is_held_by(0, 42));
        assert!(!f.is_held_by(0, 43));
        assert_eq!(f.ancilla_free_at(0), u64::MAX);
        f.release_ancilla(0, 21);
        assert!(f.ancilla_free(0, 21));
        assert!(!f.is_held(0));
    }

    #[test]
    fn orientation_flip() {
        let mut f = fabric();
        assert_eq!(f.orientation[0], Orientation::Standard);
        f.flip_orientation(QubitId(0));
        assert_eq!(f.orientation[0], Orientation::Rotated);
        f.flip_orientation(QubitId(0));
        assert_eq!(f.orientation[0], Orientation::Standard);
    }

    #[test]
    fn cycle_activity_capture() {
        let mut f = fabric();
        f.occupy_ancilla(1, 0, 5); // within the first cycle (rounds 0..7)
        f.hold_ancilla(2, 9);
        let act = f.end_cycle_activity(7).to_vec();
        assert!(act[1]);
        assert!(act[2]);
        assert!(!act[0]);
        // Held ancilla remains active in the new cycle; the finished one not.
        let act2 = f.end_cycle_activity(14);
        assert!(!act2[1]);
        assert!(act2[2]);
    }
}
