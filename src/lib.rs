//! # rescq-repro
//!
//! Meta-crate for the RESCQ reproduction workspace. Re-exports every member
//! crate under a stable set of names so that examples and integration tests can
//! exercise the full public API through a single dependency.
//!
//! The interesting code lives in the member crates:
//!
//! - [`circuit`] — Clifford+Rz gate IR, angles, DAGs, parsers
//! - [`workloads`] — Table 3 benchmark generators
//! - [`lattice`] — surface-code tile fabric, STAR layouts, MST
//! - [`rus`] — repeat-until-success preparation / injection models
//! - [`core`] — ancilla queues, dynamic MST, routing, the schedulers
//! - [`decoder`] — realtime classical-decoder models and back-pressure
//! - [`sim`] — cycle-accurate engine, metrics, multi-seed runner
//! - [`harness`] — parallel sweep orchestration with shared artifact caching
//! - [`telemetry`] — cycle-level tracing, stall attribution, perf baselines
//!
//! # Example
//!
//! ```
//! use rescq_repro::prelude::*;
//!
//! let circuit = rescq_repro::workloads::vqe::generate(13, 777);
//! let config = SimConfig::builder()
//!     .distance(7)
//!     .physical_error_rate(1e-4)
//!     .scheduler(SchedulerKind::Rescq)
//!     .seed(42)
//!     .build();
//! let report = simulate(&circuit, &config).expect("simulation runs");
//! assert!(report.total_cycles() > 0.0);
//! ```

pub use rescq_circuit as circuit;
pub use rescq_core as core;
pub use rescq_decoder as decoder;
pub use rescq_harness as harness;
pub use rescq_lattice as lattice;
pub use rescq_rus as rus;
pub use rescq_sim as sim;
pub use rescq_telemetry as telemetry;
pub use rescq_workloads as workloads;

/// Commonly used items across the workspace, for glob import in examples.
pub mod prelude {
    pub use rescq_circuit::{Angle, Circuit, Gate, QubitId};
    pub use rescq_core::{KPolicy, SchedulerKind};
    pub use rescq_lattice::{Layout, LayoutKind};
    pub use rescq_sim::{simulate, ExecutionReport, SimConfig};
}
