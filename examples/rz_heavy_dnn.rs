//! The paper's motivating workload: `dnn_n16`, the most rotation-dense
//! benchmark (≈6.3 Rz per CNOT). RESCQ's parallel + eager preparation gives
//! its largest win here (Fig 10's ≈2.5×).
//!
//! ```sh
//! cargo run --release --example rz_heavy_dnn
//! ```

use rescq_repro::core::SchedulerKind;
use rescq_repro::sim::runner::run_seeds;
use rescq_repro::sim::SimConfig;

fn main() {
    let circuit = rescq_repro::workloads::generate("dnn_n16", 1).expect("known benchmark");
    println!(
        "dnn_n16: {} qubits, {} gates ({})",
        circuit.num_qubits(),
        circuit.len(),
        circuit.stats()
    );

    let mut baseline = f64::NAN;
    for scheduler in SchedulerKind::ALL {
        let config = SimConfig::builder().scheduler(scheduler).build();
        let summary = run_seeds(&circuit, &config, 1, 5, 4).expect("sweep runs");
        let mean = summary.mean_cycles();
        if scheduler == SchedulerKind::Greedy {
            baseline = mean;
        }
        let cnot = summary.merged_cnot_latency();
        let rz = summary.merged_rz_latency();
        println!(
            "{scheduler:>9}: {mean:>7.0} cycles ({:.2}x vs greedy) | CNOT: {:.1} cy mean, {:.0}% ≤2cy | Rz: {:.1} cy mean",
            baseline / mean,
            cnot.mean(),
            cnot.fraction_at_most(2) * 100.0,
            rz.mean()
        );
    }
}
