//! Region-partitioned scheduling workers for the realtime engine.
//!
//! A single 420-qubit realtime run used to be one monolithic cycle loop on
//! one core. Real-time QEC control stacks get their latency headroom from
//! *spatial* parallelism over the fabric (Triage's per-region window
//! workers; the region-partitioned classical pipeline of the real-time QEC
//! system stack), and the explicit [`ReservationLedger`] arbitration from
//! the scheduling core makes that safe here: shard workers only ever
//! *propose*, and every queue mutation still commits through the ledger.
//!
//! Three pieces:
//!
//! - [`RegionPartition`] splits the ancilla index space into contiguous
//!   regions of roughly [`REGION_TARGET`] ancillas. The partition is a
//!   property of the **fabric alone** — never of the thread count — so
//!   every region-derived quantity (e.g. the cross-shard claim/preemption
//!   counters) is identical no matter how many workers ran the scan.
//! - [`ShardPool`] is a persistent fork-join pool: worker threads park on a
//!   condvar between scheduling passes and execute read-only region scans
//!   when the coordinator publishes a job. The pool exists for the lifetime
//!   of one engine run (no per-pass thread spawning).
//! - [`ShardExecutor`] is the engine-facing facade: `scan` evaluates a pure
//!   per-ancilla predicate over every region and returns the matching
//!   ancillas **in ascending index order** regardless of which worker
//!   scanned which region, and `fill_u64` computes a per-ancilla vector
//!   (the §4.2 expected-free estimates) the same way.
//!
//! # The determinism contract
//!
//! Shard workers never mutate: they scan a frozen snapshot of the engine
//! between barriers and produce *proposals* (candidate ancilla indices).
//! The coordinator then revalidates and commits each proposal serially, in
//! canonical (ascending ancilla) order, through the reservation ledger —
//! recomputing the decision against committed state, exactly as the old
//! sequential loop did. Because the scan is pure and the commit order is
//! canonical, the schedule produced is **bit-identical for any shard/thread
//! count**, including `engine_threads = 1`, which reproduces the historical
//! single-threaded engine exactly (golden-pinned in `tests/engines.rs`).

use rescq_core::TaskClass;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Target ancillas per region. Small enough that modest benchmarks span
/// several regions (exercising cross-shard arbitration), large enough that
/// a region scan amortises the barrier cost.
pub(crate) const REGION_TARGET: usize = 32;

/// A partition of the ancilla index space `0..n` into contiguous regions.
///
/// Regions are balanced to within one ancilla and depend only on `n`, so
/// the same fabric always produces the same partition. A region may carry
/// an optional **urgency override** — a [`TaskClass`] that work homed in
/// the region is promoted to (e.g. regions hosting T-gate factory tiles
/// outranking compute regions). Overrides are derived from the circuit and
/// fabric alone, so they are as thread-count invariant as the partition
/// itself.
#[derive(Debug, Clone)]
pub(crate) struct RegionPartition {
    /// Region boundaries: region `r` covers `bounds[r]..bounds[r + 1]`.
    bounds: Vec<u32>,
    /// Per-region urgency override (`None` = no promotion). Only populated
    /// when priority classes are enabled.
    class_override: Vec<Option<TaskClass>>,
}

impl RegionPartition {
    /// Partitions `num_ancillas` indices into regions of roughly
    /// [`REGION_TARGET`] ancillas.
    pub(crate) fn for_fabric(num_ancillas: usize) -> Self {
        Self::with_regions(num_ancillas, num_ancillas.div_ceil(REGION_TARGET).max(1))
    }

    /// Partitions `num_ancillas` indices into exactly `regions` contiguous,
    /// balanced ranges (sizes differ by at most one).
    pub(crate) fn with_regions(num_ancillas: usize, regions: usize) -> Self {
        let regions = regions.clamp(1, num_ancillas.max(1));
        let base = num_ancillas / regions;
        let extra = num_ancillas % regions;
        let mut bounds = Vec::with_capacity(regions + 1);
        let mut at = 0usize;
        bounds.push(0);
        for r in 0..regions {
            at += base + usize::from(r < extra);
            bounds.push(at as u32);
        }
        debug_assert_eq!(at, num_ancillas);
        RegionPartition {
            class_override: vec![None; regions],
            bounds,
        }
    }

    /// Number of regions.
    pub(crate) fn num_regions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Promotes region `r` to at least `class` (an existing higher override
    /// wins — overrides only ever raise urgency).
    pub(crate) fn raise_region_class(&mut self, r: u32, class: TaskClass) {
        let slot = &mut self.class_override[r as usize];
        if slot.is_none_or(|current| current < class) {
            *slot = Some(class);
        }
    }

    /// The urgency override of region `r`, if any.
    pub(crate) fn region_class(&self, r: u32) -> Option<TaskClass> {
        self.class_override[r as usize]
    }

    /// The ancilla index range of region `r`.
    pub(crate) fn range(&self, r: usize) -> Range<u32> {
        self.bounds[r]..self.bounds[r + 1]
    }

    /// The region hosting ancilla `a`.
    pub(crate) fn region_of(&self, a: u32) -> u32 {
        // Regions are balanced, so a direct partition-point search is
        // O(log regions); partition sizes differ by one, so the simple
        // binary search over `bounds` is exact.
        match self.bounds.binary_search(&a) {
            // `a` is a boundary: it starts the region at that index (the
            // final boundary equals `n` and is never a valid ancilla).
            Ok(i) => (i as u32).min(self.num_regions() as u32 - 1),
            Err(i) => i as u32 - 1,
        }
    }
}

/// One scan job published to the pool: a type-erased `Fn(region_index)`
/// plus the region count and executor stride.
#[derive(Clone, Copy)]
struct Job {
    /// Borrowed closure, valid strictly until the publishing `run` call
    /// observes `remaining == 0`.
    f: *const (dyn Fn(usize) + Sync),
    regions: usize,
    /// Total executors (pool workers + the coordinator).
    stride: usize,
}

// SAFETY: the pointer is only dereferenced by pool workers between job
// publication and the `remaining == 0` acknowledgement, and `ShardPool::run`
// blocks the owning (borrowing) thread for exactly that window.
unsafe impl Send for Job {}

#[derive(Default)]
struct PoolState {
    job: Option<Job>,
    generation: u64,
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A persistent fork-join pool of scheduling workers.
///
/// Workers park between barriers; [`ShardPool::run`] publishes one job,
/// participates as executor 0 itself, and returns once every worker has
/// finished the generation — the deterministic barrier of the shard
/// protocol.
#[derive(Debug)]
pub(crate) struct ShardPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Spawns `workers` parked worker threads (callers pass `threads - 1`;
    /// the coordinator itself is the remaining executor).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // Executor 0 is the coordinator; workers are 1-based.
                let executor = i + 1;
                std::thread::Builder::new()
                    .name(format!("rescq-shard-{executor}"))
                    .spawn(move || worker_loop(&shared, executor))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Number of executors a `run` call uses (workers + coordinator).
    pub(crate) fn executors(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(region)` once for every region in `0..regions`, fanning the
    /// regions out round-robin over the executors, and returns after **all**
    /// of them completed (the barrier). The coordinator thread itself
    /// executes the regions assigned to executor 0.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) any panic that occurred on a worker.
    pub(crate) fn run(&self, regions: usize, f: &(dyn Fn(usize) + Sync)) {
        let stride = self.executors();
        {
            let mut st = self.shared.state.lock().expect("shard pool poisoned");
            debug_assert_eq!(st.remaining, 0, "overlapping shard jobs");
            // SAFETY (lifetime erasure): the raw pointer's trait object is
            // nominally `'static`, but `f` only needs to outlive this call —
            // the wait loop below does not return until every worker
            // finished using the pointer, and `st.job` is cleared before
            // returning.
            let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
            };
            st.job = Some(Job {
                f: f_erased,
                regions,
                stride,
            });
            st.generation += 1;
            st.remaining = self.handles.len();
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // The coordinator is executor 0. Its own panics must NOT unwind
        // past the barrier below: workers still hold the lifetime-erased
        // closure pointer, and unwinding would free the closure (and the
        // caller's output buffers) under them — so catch, reach the
        // barrier, and only then re-raise.
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut r = 0;
            while r < regions {
                f(r);
                r += stride;
            }
        }));
        let mut st = self.shared.state.lock().expect("shard pool poisoned");
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).expect("shard pool poisoned");
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a shard scheduling worker panicked");
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("shard pool poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, executor: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("shard pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen_generation {
                    seen_generation = st.generation;
                    break st.job.expect("job published with generation");
                }
                st = shared.work_cv.wait(st).expect("shard pool poisoned");
            }
        };
        // SAFETY: see `Job::f` — the coordinator blocks in `run` until this
        // worker decrements `remaining`, keeping the borrow alive.
        let f = unsafe { &*job.f };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut r = executor;
            while r < job.regions {
                f(r);
                r += job.stride;
            }
        }));
        let mut st = shared.state.lock().expect("shard pool poisoned");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Per-region scratch the scan phase writes into. Each region buffer is
/// written by exactly the one executor that owns the region for the current
/// job, which is what makes the unsynchronised access sound.
struct RegionBufs {
    bufs: Vec<std::cell::UnsafeCell<Vec<u32>>>,
}

// SAFETY: region `r`'s cell is touched only by the single executor that
// `ShardPool::run` assigned region `r` to, and the coordinator only reads
// the buffers after the barrier.
unsafe impl Sync for RegionBufs {}

/// The engine-facing executor: serial inline scans for `engine_threads = 1`
/// (zero overhead, the historical engine), a [`ShardPool`] otherwise. Both
/// paths produce identical output by construction — the executor choice is
/// invisible to the schedule.
#[derive(Debug)]
pub(crate) enum ShardExecutor {
    /// Inline scans on the coordinator thread.
    Serial,
    /// Region scans fanned out over a persistent worker pool.
    Pooled(ShardPool),
}

impl ShardExecutor {
    /// Builds an executor running `threads` executors in total.
    pub(crate) fn new(threads: usize) -> Self {
        if threads <= 1 {
            ShardExecutor::Serial
        } else {
            ShardExecutor::Pooled(ShardPool::new(threads - 1))
        }
    }

    /// The number of executors (1 for serial).
    pub(crate) fn threads(&self) -> usize {
        match self {
            ShardExecutor::Serial => 1,
            ShardExecutor::Pooled(pool) => pool.executors(),
        }
    }

    /// Evaluates `pred` for every ancilla of every region and returns the
    /// matching indices in ascending order. `pred` must be pure with
    /// respect to the engine state (it is called concurrently from shard
    /// workers); the result is independent of the executor variant.
    pub(crate) fn scan(
        &self,
        partition: &RegionPartition,
        pred: &(dyn Fn(u32) -> bool + Sync),
    ) -> Vec<u32> {
        match self {
            ShardExecutor::Serial => {
                let n = partition.range(partition.num_regions() - 1).end;
                (0..n).filter(|&a| pred(a)).collect()
            }
            ShardExecutor::Pooled(pool) => {
                let regions = partition.num_regions();
                let bufs = RegionBufs {
                    bufs: (0..regions)
                        .map(|_| std::cell::UnsafeCell::new(Vec::new()))
                        .collect(),
                };
                // Capture the `Sync` wrapper, not its non-`Sync` field
                // (closures capture disjoint field paths by default).
                let bufs_ref = &bufs;
                pool.run(regions, &|r| {
                    // SAFETY: `RegionBufs` — one executor per region.
                    let buf = unsafe { &mut *bufs_ref.bufs[r].get() };
                    buf.extend(partition.range(r).filter(|&a| pred(a)));
                });
                // Concatenating in region order restores ascending ancilla
                // order (regions are contiguous and ordered).
                let mut out = Vec::new();
                for cell in bufs.bufs {
                    out.append(&mut cell.into_inner());
                }
                out
            }
        }
    }

    /// Computes `f(a)` for every ancilla `a` into a dense vector, fanning
    /// regions out over the executors. Equivalent to
    /// `(0..n).map(f).collect()` for any executor variant.
    pub(crate) fn fill_u64(
        &self,
        partition: &RegionPartition,
        f: &(dyn Fn(u32) -> u64 + Sync),
    ) -> Vec<u64> {
        let n = partition.range(partition.num_regions() - 1).end as usize;
        match self {
            ShardExecutor::Serial => (0..n as u32).map(f).collect(),
            ShardExecutor::Pooled(pool) => {
                let mut out = vec![0u64; n];
                let slots = SliceWriter {
                    ptr: out.as_mut_ptr(),
                };
                let slots_ref = &slots;
                pool.run(partition.num_regions(), &|r| {
                    for a in partition.range(r) {
                        // SAFETY: regions are disjoint index ranges within
                        // `0..n` and each region is written by exactly one
                        // executor before the barrier; the coordinator
                        // reads `out` only after `run` returns.
                        unsafe { slots_ref.ptr.add(a as usize).write(f(a)) };
                    }
                });
                out
            }
        }
    }
}

/// A raw, `Sync` handle to the output slice of [`ShardExecutor::fill_u64`].
struct SliceWriter {
    ptr: *mut u64,
}

// SAFETY: see the write site — executors write disjoint index ranges.
unsafe impl Sync for SliceWriter {}
unsafe impl Send for SliceWriter {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_is_contiguous_balanced_and_thread_independent() {
        for n in [1usize, 5, 31, 32, 33, 100, 421] {
            let p = RegionPartition::for_fabric(n);
            assert_eq!(p.range(0).start, 0);
            assert_eq!(p.range(p.num_regions() - 1).end as usize, n);
            let mut sizes = Vec::new();
            for r in 0..p.num_regions() {
                let range = p.range(r);
                assert!(range.start <= range.end);
                if r > 0 {
                    assert_eq!(p.range(r - 1).end, range.start, "contiguous");
                }
                sizes.push(range.len());
                for a in range {
                    assert_eq!(p.region_of(a), r as u32, "n={n} a={a}");
                }
            }
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
        // Region count follows the fabric, not the executor.
        assert_eq!(RegionPartition::for_fabric(64).num_regions(), 2);
        assert_eq!(RegionPartition::for_fabric(65).num_regions(), 3);
    }

    #[test]
    fn explicit_region_counts_clamp() {
        assert_eq!(RegionPartition::with_regions(4, 9).num_regions(), 4);
        assert_eq!(RegionPartition::with_regions(0, 3).num_regions(), 1);
        assert_eq!(RegionPartition::with_regions(10, 3).num_regions(), 3);
    }

    #[test]
    fn pool_runs_every_region_exactly_once() {
        let pool = ShardPool::new(3);
        assert_eq!(pool.executors(), 4);
        let counts: Vec<AtomicUsize> = (0..11).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(counts.len(), &|r| {
                counts[r].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (r, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 50, "region {r}");
        }
    }

    #[test]
    fn scan_matches_serial_for_any_executor() {
        let partition = RegionPartition::for_fabric(130);
        let pred = |a: u32| a.is_multiple_of(7) || a % 11 == 3;
        let serial = ShardExecutor::Serial.scan(&partition, &pred);
        for threads in [2usize, 3, 8] {
            let exec = ShardExecutor::new(threads);
            assert_eq!(exec.threads(), threads);
            assert_eq!(exec.scan(&partition, &pred), serial, "threads={threads}");
        }
    }

    #[test]
    fn fill_matches_serial_for_any_executor() {
        let partition = RegionPartition::for_fabric(97);
        let f = |a: u32| (a as u64) * 31 + 7;
        let serial = ShardExecutor::Serial.fill_u64(&partition, &f);
        assert_eq!(serial.len(), 97);
        for threads in [2usize, 5] {
            let exec = ShardExecutor::new(threads);
            assert_eq!(exec.fill_u64(&partition, &f), serial, "threads={threads}");
        }
    }

    #[test]
    fn panics_on_either_side_of_the_barrier_propagate_safely() {
        // 3 executors over 4 regions of 10: regions 0 and 3 run on the
        // coordinator (executor 0), regions 1 and 2 on pool workers. Both
        // panic paths must reach the barrier first (workers still hold the
        // borrowed closure pointer until then) and then re-raise — and the
        // pool must stay usable afterwards.
        let exec = ShardExecutor::new(3);
        let partition = RegionPartition::with_regions(40, 4);
        for poisoned in [35u32, 15] {
            // 35 = coordinator's region 3; 15 = a worker's region 1.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                exec.scan(&partition, &|a| {
                    assert!(a != poisoned, "boom at {a}");
                    true
                });
            }));
            assert!(result.is_err(), "panic at {poisoned} must not be swallowed");
            // The barrier completed: a fresh job runs to completion.
            let all = exec.scan(&partition, &|_| true);
            assert_eq!(all.len(), 40, "pool unusable after panic at {poisoned}");
        }
    }
}
