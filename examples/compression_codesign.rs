//! Hardware/software co-design (paper §5.3): shrink the STAR grid from three
//! ancillas per data qubit towards one and watch how each scheduler copes.
//! Prints the Fig 15 grids and a Fig 14-style sweep.
//!
//! ```sh
//! cargo run --release --example compression_codesign
//! ```

use rescq_repro::core::SchedulerKind;
use rescq_repro::lattice::{Layout, LayoutKind};
use rescq_repro::sim::runner::run_seeds;
use rescq_repro::sim::SimConfig;

fn main() {
    // Fig 15: what compression does to an 8-qubit fabric.
    for compression in [0.0, 0.5, 1.0] {
        let mut layout = Layout::new(LayoutKind::Star2x2, 8).unwrap();
        let achieved = layout.compress(compression, 42);
        println!(
            "--- requested {:.0}%, achieved {:.0}%, {:.2} ancilla/data ---",
            compression * 100.0,
            achieved * 100.0,
            layout.ancilla_ratio()
        );
        println!("{}", layout.render_ascii());
    }

    // Fig 14: execution time under compression for a rotation-dense circuit.
    let circuit = rescq_repro::workloads::generate("gcm_n13", 1).expect("known benchmark");
    println!("gcm_n13 under compression (mean cycles over 3 seeds):");
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "compression", "greedy", "autobraid", "rescq"
    );
    for compression in [0.0, 0.25, 0.5, 0.75, 1.0] {
        print!("{:>11.0}%", compression * 100.0);
        for scheduler in SchedulerKind::ALL {
            let config = SimConfig::builder()
                .scheduler(scheduler)
                .compression(compression)
                .build();
            let summary = run_seeds(&circuit, &config, 1, 3, 3).expect("sweep runs");
            print!(" {:>10.0}", summary.mean_cycles());
        }
        println!();
    }
}
