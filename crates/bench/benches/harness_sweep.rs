//! The harness acceptance benchmark (ISSUE 2): a 4-point × 4-seed decoder
//! sweep through `rescq-harness` on 4 workers must be ≥ 2× faster
//! wall-clock than the sequential pre-harness path — each point
//! regenerating the circuit and each run rebuilding the fabric — while
//! producing byte-identical CSV rows.
//!
//! Each path is timed as the best of [`ITERATIONS`] runs so a scheduler
//! hiccup on a shared CI runner cannot fail the threshold spuriously; the
//! sweep itself is deterministic, so repeat runs produce identical rows.

use rescq_bench::print_header;
use rescq_harness::{csv_row, run_sweep, JobMetrics, RunOptions, SweepSpec, CSV_HEADER};
use std::time::Instant;

const WORKERS: usize = 4;
const ITERATIONS: usize = 3;

fn spec() -> SweepSpec {
    SweepSpec::parse(
        r#"
        [sweep]
        workloads = ["decoder_stress_n12"]
        decoders  = ["ideal", "fixed:2", "fixed:1", "fixed:0.5"]
        seeds     = 4
        "#,
    )
    .expect("spec parses")
}

/// The sequential PR-1 path: each point regenerates the circuit, each run
/// rebuilds DAG + fabric inside `simulate`, one job at a time.
fn run_sequential(spec: &SweepSpec) -> String {
    let jobs = spec.expand();
    let mut rows = vec![CSV_HEADER.to_string()];
    for point in jobs.chunks(spec.seeds as usize) {
        let circuit = rescq_workloads::generate(&point[0].workload, spec.circuit_seed).unwrap();
        for job in point {
            let report = rescq_sim::simulate(&circuit, &job.config).expect("run completes");
            rows.push(csv_row(job, &JobMetrics::from_report(&report)));
        }
    }
    let mut csv = rows.join("\n");
    csv.push('\n');
    csv
}

fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one iteration"))
}

fn main() {
    print_header(
        "Harness sweep — parallel shared-artifact vs sequential per-point",
        "4 decoder points x 4 seeds; harness on 4 workers vs the PR-1 path",
    );
    let spec = spec();

    let (seq_secs, seq_csv) = best_of(ITERATIONS, || run_sequential(&spec));

    // The harness path: shared artifact cache, 4 workers.
    let (par_secs, results) = best_of(ITERATIONS, || {
        run_sweep(&spec, &RunOptions::with_threads(WORKERS)).expect("sweep runs")
    });
    assert!(results.first_error().is_none(), "all jobs must succeed");

    assert_eq!(
        results.to_csv(),
        seq_csv,
        "harness rows must be byte-identical to the sequential path"
    );

    let speedup = seq_secs / par_secs.max(1e-9);
    println!("sequential (PR-1 path): {seq_secs:>8.3}s  (best of {ITERATIONS})");
    println!("harness ({WORKERS} workers):    {par_secs:>8.3}s  (best of {ITERATIONS})");
    println!("speedup:                {speedup:>8.2}x");
    println!("artifact cache:         {}", results.cache);
    println!("byte-identical CSV rows: PASS");

    // The wall-clock half of the acceptance needs actual cores: with fewer
    // cores than workers, threads time-slice and a 2x parallel win is not
    // physically reachable, so the assertion only arms when the host can
    // run every worker concurrently.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= WORKERS {
        assert!(
            speedup >= 2.0,
            "acceptance: harness must be >= 2x faster on {cores} cores (got {speedup:.2}x)"
        );
        println!("acceptance (>= 2x wall-clock on {cores} cores): PASS");
    } else {
        println!(
            "acceptance (>= 2x wall-clock): SKIPPED — {cores} cores cannot host {WORKERS} \
             workers at full speed (a 2x parallel win needs >= {WORKERS} cores)"
        );
    }
}
