//! Offline vendored shim of the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, integer and float
//! `gen_range`, `gen_bool`, and Fisher–Yates [`seq::SliceRandom::shuffle`].
//! The concrete generator lives in the sibling `rand_chacha` shim.
//!
//! Distribution quality notes: floats are drawn with the standard 53-bit
//! mantissa construction, integer ranges use the unbiased-enough 128-bit
//! multiply-shift reduction, and `gen_bool` compares a uniform f64 — all
//! equivalent in distribution to the upstream implementations, though not
//! bit-compatible with them (nothing in this workspace depends on upstream
//! bit streams; determinism is per-seed within this codebase).

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A `u64` mapped to the unit interval `[0, 1)` with 53 bits of precision.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough reduction of a random `u64` into `[0, span)`.
fn reduce(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

/// A range random values can be drawn from (the shim's stand-in for rand's
/// `SampleRange`/`SampleUniform` machinery).
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )+};
}

int_range!(u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::{reduce, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = reduce(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but well-spread LCG is enough to test plumbing.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
