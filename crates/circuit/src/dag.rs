//! Gate dependency DAG: per-qubit predecessor chains, ASAP layering and
//! critical-path depths.
//!
//! Static schedulers (greedy [18], AutoBraid [16]) execute the ASAP layers in
//! lock-step: the next layer starts only once every gate of the current layer
//! finished (paper §3.1). The realtime RESCQ scheduler instead consumes the
//! per-qubit chains directly and uses [`DependencyDag::remaining_depth`] to
//! prioritize gates that are likely on the critical path (paper Fig 7 caption).

use crate::{Circuit, Gate, GateId};

/// Dependency structure of a [`Circuit`].
///
/// # Example
///
/// ```
/// use rescq_circuit::{Angle, Circuit, DependencyDag, GateId};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(1).cnot(0, 1).rz(1, Angle::T);
/// let dag = DependencyDag::new(&c);
/// assert_eq!(dag.layers().len(), 3);
/// assert_eq!(dag.asap_layer(GateId(2)), 1); // the CNOT waits for both H's
/// assert!(dag.remaining_depth(GateId(0)) >= dag.remaining_depth(GateId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct DependencyDag {
    /// For each gate, its immediate predecessor on each operand qubit.
    preds: Vec<[Option<GateId>; 2]>,
    /// For each gate, gates that list it as a predecessor.
    succs: Vec<Vec<GateId>>,
    /// ASAP layer index of each gate (0-based).
    asap: Vec<u32>,
    /// Longest chain from this gate (inclusive) to any sink.
    remaining: Vec<u32>,
    /// Gates grouped by ASAP layer.
    layers: Vec<Vec<GateId>>,
    /// Per-qubit program-order gate chains.
    qubit_chains: Vec<Vec<GateId>>,
}

impl DependencyDag {
    /// Builds the DAG for `circuit` in `O(gates)`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let nq = circuit.num_qubits() as usize;
        let mut preds = vec![[None, None]; n];
        let mut succs = vec![Vec::new(); n];
        let mut asap = vec![0u32; n];
        let mut last_on_qubit: Vec<Option<GateId>> = vec![None; nq];
        let mut qubit_chains: Vec<Vec<GateId>> = vec![Vec::new(); nq];

        for (id, gate) in circuit.iter() {
            let mut layer = 0;
            for (slot, q) in gate.qubits().into_iter().enumerate() {
                if let Some(prev) = last_on_qubit[q.index()] {
                    preds[id.index()][slot] = Some(prev);
                    succs[prev.index()].push(id);
                    layer = layer.max(asap[prev.index()] + 1);
                }
            }
            asap[id.index()] = layer;
            for q in gate.qubits() {
                last_on_qubit[q.index()] = Some(id);
                qubit_chains[q.index()].push(id);
            }
        }

        let max_layer = asap.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut layers = vec![Vec::new(); max_layer];
        for (i, &l) in asap.iter().enumerate() {
            layers[l as usize].push(GateId(i));
        }

        // Remaining depth: reverse topological order = reverse program order.
        let mut remaining = vec![1u32; n];
        for i in (0..n).rev() {
            let mut best = 1;
            for &s in &succs[i] {
                best = best.max(1 + remaining[s.index()]);
            }
            remaining[i] = best;
        }

        DependencyDag {
            preds,
            succs,
            asap,
            remaining,
            layers,
            qubit_chains,
        }
    }

    /// Immediate predecessors of `gate` (one per operand qubit, when present).
    pub fn preds(&self, gate: GateId) -> impl Iterator<Item = GateId> + '_ {
        self.preds[gate.index()].into_iter().flatten()
    }

    /// Immediate successors of `gate`.
    pub fn succs(&self, gate: GateId) -> &[GateId] {
        &self.succs[gate.index()]
    }

    /// The ASAP layer of `gate` (0-based).
    pub fn asap_layer(&self, gate: GateId) -> u32 {
        self.asap[gate.index()]
    }

    /// Length of the longest dependency chain starting at `gate`, inclusive.
    /// Larger values mean the gate is more likely on the critical path; the
    /// RESCQ scheduler breaks simultaneous-scheduling ties with this.
    pub fn remaining_depth(&self, gate: GateId) -> u32 {
        self.remaining[gate.index()]
    }

    /// Gates grouped by ASAP layer, in layer order.
    pub fn layers(&self) -> &[Vec<GateId>] {
        &self.layers
    }

    /// Gates touching qubit `q`, in program order.
    pub fn qubit_chain(&self, q: crate::QubitId) -> &[GateId] {
        &self.qubit_chains[q.index()]
    }

    /// Number of gates in the DAG.
    pub fn len(&self) -> usize {
        self.asap.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.asap.is_empty()
    }

    /// Checks that `order` (a permutation of gate ids) respects dependencies.
    /// Used by scheduler tests and property tests.
    pub fn respects_dependencies(&self, order: &[GateId]) -> bool {
        let mut pos = vec![usize::MAX; self.len()];
        for (i, g) in order.iter().enumerate() {
            pos[g.index()] = i;
        }
        if pos.contains(&usize::MAX) {
            return false;
        }
        (0..self.len()).all(|i| self.preds(GateId(i)).all(|p| pos[p.index()] < pos[i]))
    }
}

/// Convenience: layered view where each entry is `(GateId, Gate)`.
pub fn asap_layers(circuit: &Circuit) -> Vec<Vec<(GateId, Gate)>> {
    let dag = DependencyDag::new(circuit);
    dag.layers()
        .iter()
        .map(|layer| layer.iter().map(|&id| (id, circuit.gate(id))).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Angle;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0) // g0 layer 0
            .h(1) // g1 layer 0
            .cnot(0, 1) // g2 layer 1
            .rz(2, Angle::T) // g3 layer 0
            .cnot(1, 2) // g4 layer 2
            .rz(2, Angle::T); // g5 layer 3
        c
    }

    #[test]
    fn layers_and_preds() {
        let c = sample();
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.asap_layer(GateId(0)), 0);
        assert_eq!(dag.asap_layer(GateId(2)), 1);
        assert_eq!(dag.asap_layer(GateId(4)), 2);
        assert_eq!(dag.asap_layer(GateId(5)), 3);
        assert_eq!(dag.layers().len(), 4);
        let preds: Vec<_> = dag.preds(GateId(4)).collect();
        assert_eq!(preds, vec![GateId(2), GateId(3)]);
        assert_eq!(dag.succs(GateId(4)), &[GateId(5)]);
    }

    #[test]
    fn remaining_depth_is_critical_path() {
        let c = sample();
        let dag = DependencyDag::new(&c);
        // g0 → g2 → g4 → g5 : depth 4 from g0.
        assert_eq!(dag.remaining_depth(GateId(0)), 4);
        assert_eq!(dag.remaining_depth(GateId(5)), 1);
        assert_eq!(dag.remaining_depth(GateId(3)), 3); // g3 → g4 → g5
    }

    #[test]
    fn qubit_chains_in_order() {
        let c = sample();
        let dag = DependencyDag::new(&c);
        assert_eq!(
            dag.qubit_chain(crate::QubitId(1)),
            &[GateId(1), GateId(2), GateId(4)]
        );
        assert_eq!(
            dag.qubit_chain(crate::QubitId(2)),
            &[GateId(3), GateId(4), GateId(5)]
        );
    }

    #[test]
    fn program_order_respects_dependencies() {
        let c = sample();
        let dag = DependencyDag::new(&c);
        let order: Vec<_> = (0..c.len()).map(GateId).collect();
        assert!(dag.respects_dependencies(&order));
        let mut bad = order.clone();
        bad.swap(2, 4); // g4 before g2 violates the qubit-1 chain
        assert!(!dag.respects_dependencies(&bad));
    }

    #[test]
    fn empty_dag() {
        let c = Circuit::new(2);
        let dag = DependencyDag::new(&c);
        assert!(dag.is_empty());
        assert!(dag.layers().is_empty());
    }
}
