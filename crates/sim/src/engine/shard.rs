//! Region-partitioned scheduling workers for the realtime engine.
//!
//! A single 420-qubit realtime run used to be one monolithic cycle loop on
//! one core. Real-time QEC control stacks get their latency headroom from
//! *spatial* parallelism over the fabric (Triage's per-region window
//! workers; the region-partitioned classical pipeline of the real-time QEC
//! system stack), and the explicit [`ReservationLedger`] arbitration from
//! the scheduling core makes that safe here: shard workers only ever
//! *propose*, and every queue mutation still commits through the ledger.
//!
//! Three pieces:
//!
//! - [`RegionPartition`] splits the ancilla index space into contiguous
//!   regions of roughly [`REGION_TARGET`] ancillas. The partition is a
//!   property of the **fabric alone** — never of the thread count — so
//!   every region-derived quantity (e.g. the cross-shard claim/preemption
//!   counters) is identical no matter how many workers ran the scan.
//! - [`ShardPool`] is a persistent **lock-free** fork-join pool: the
//!   coordinator publishes a job by bumping an atomic generation counter,
//!   executors claim regions with a single `fetch_add` (so every region
//!   runs exactly once, SPMC), and the barrier is an atomic countdown —
//!   no mutex, no condvar, no allocation anywhere on the handoff path.
//! - [`ShardExecutor`] is the engine-facing facade: `scan_into` evaluates a
//!   pure per-ancilla predicate over every region and fills the caller's
//!   buffer with matching ancillas **in ascending index order** regardless
//!   of which worker scanned which region, `scan_words_into` does the same
//!   restricted to the set bits of packed `u64` occupancy words (the §4.2
//!   word-parallel scan), and `fill_u64_into`/`fill_u64_sparse_into`
//!   compute per-ancilla vectors (the expected-free estimates) the same
//!   way. All of them fill caller-provided buffers — the hot loop never
//!   allocates.
//!
//! # The determinism contract
//!
//! Shard workers never mutate: they scan a frozen snapshot of the engine
//! between barriers and publish *proposals* (candidate ancilla indices)
//! into a [`ProposalRing`] — an MPSC ring whose slots are claimed with one
//! atomic `fetch_add` per proposal, never a lock. Region-claiming order,
//! ring slot order, and thread interleaving are all nondeterministic; none
//! of it matters, because after the barrier the coordinator drains the ring
//! and **sorts the proposals into canonical ascending-ancilla order** before
//! revalidating and committing each one serially through the reservation
//! ledger — recomputing the decision against committed state, exactly as
//! the old sequential loop did. The proposal *set* is thread-count
//! independent (the predicate is pure over frozen state and every ancilla
//! is tested exactly once), so sorted order == serial scan order, and the
//! schedule produced is **bit-identical for any shard/thread count**,
//! including `engine_threads = 1`, which reproduces the historical
//! single-threaded engine exactly (golden-pinned in `tests/engines.rs`).

use rescq_core::TaskClass;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Target ancillas per region. Small enough that modest benchmarks span
/// several regions (exercising cross-shard arbitration), large enough that
/// a region scan amortises the barrier cost.
pub(crate) const REGION_TARGET: usize = 32;

/// A partition of the ancilla index space `0..n` into contiguous regions.
///
/// Regions are balanced to within one ancilla and depend only on `n`, so
/// the same fabric always produces the same partition. A region may carry
/// an optional **urgency override** — a [`TaskClass`] that work homed in
/// the region is promoted to (e.g. regions hosting T-gate factory tiles
/// outranking compute regions). Overrides are derived from the circuit and
/// fabric alone, so they are as thread-count invariant as the partition
/// itself.
#[derive(Debug, Clone)]
pub(crate) struct RegionPartition {
    /// Region boundaries: region `r` covers `bounds[r]..bounds[r + 1]`.
    bounds: Vec<u32>,
    /// Per-region urgency override (`None` = no promotion). Only populated
    /// when priority classes are enabled.
    class_override: Vec<Option<TaskClass>>,
}

impl RegionPartition {
    /// Partitions `num_ancillas` indices into regions of roughly
    /// [`REGION_TARGET`] ancillas.
    pub(crate) fn for_fabric(num_ancillas: usize) -> Self {
        Self::with_regions(num_ancillas, num_ancillas.div_ceil(REGION_TARGET).max(1))
    }

    /// Partitions `num_ancillas` indices into exactly `regions` contiguous,
    /// balanced ranges (sizes differ by at most one).
    pub(crate) fn with_regions(num_ancillas: usize, regions: usize) -> Self {
        let regions = regions.clamp(1, num_ancillas.max(1));
        let base = num_ancillas / regions;
        let extra = num_ancillas % regions;
        let mut bounds = Vec::with_capacity(regions + 1);
        let mut at = 0usize;
        bounds.push(0);
        for r in 0..regions {
            at += base + usize::from(r < extra);
            bounds.push(at as u32);
        }
        debug_assert_eq!(at, num_ancillas);
        RegionPartition {
            class_override: vec![None; regions],
            bounds,
        }
    }

    /// Number of regions.
    pub(crate) fn num_regions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total ancillas partitioned.
    pub(crate) fn num_ancillas(&self) -> usize {
        self.bounds[self.num_regions()] as usize
    }

    /// Promotes region `r` to at least `class` (an existing higher override
    /// wins — overrides only ever raise urgency).
    pub(crate) fn raise_region_class(&mut self, r: u32, class: TaskClass) {
        let slot = &mut self.class_override[r as usize];
        if slot.is_none_or(|current| current < class) {
            *slot = Some(class);
        }
    }

    /// The urgency override of region `r`, if any.
    pub(crate) fn region_class(&self, r: u32) -> Option<TaskClass> {
        self.class_override[r as usize]
    }

    /// The ancilla index range of region `r`.
    pub(crate) fn range(&self, r: usize) -> Range<u32> {
        self.bounds[r]..self.bounds[r + 1]
    }

    /// The region hosting ancilla `a`.
    pub(crate) fn region_of(&self, a: u32) -> u32 {
        // Regions are balanced, so a direct partition-point search is
        // O(log regions); partition sizes differ by one, so the simple
        // binary search over `bounds` is exact.
        match self.bounds.binary_search(&a) {
            // `a` is a boundary: it starts the region at that index (the
            // final boundary equals `n` and is never a valid ancilla).
            Ok(i) => (i as u32).min(self.num_regions() as u32 - 1),
            Err(i) => i as u32 - 1,
        }
    }
}

/// Calls `f` for every set bit of `words` whose index falls in `range`, in
/// ascending index order. Bits beyond `words.len() * 64` read as zero.
#[inline]
fn for_each_set_bit_in_range(words: &[u64], range: Range<u32>, mut f: impl FnMut(u32)) {
    let (start, end) = (range.start as usize, range.end as usize);
    if start >= end || words.is_empty() {
        return;
    }
    let first_w = start / 64;
    let last_w = ((end - 1) / 64).min(words.len() - 1);
    for (wi, &word) in words.iter().enumerate().take(last_w + 1).skip(first_w) {
        let mut w = word;
        if wi == first_w {
            w &= !0u64 << (start % 64);
        }
        if wi == last_w && end % 64 != 0 && end / 64 == last_w {
            w &= (1u64 << (end % 64)) - 1;
        }
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            f((wi * 64 + b) as u32);
            w &= w - 1;
        }
    }
}

/// One scan job published to the pool: a type-erased `Fn(region_index)`
/// plus the region count.
#[derive(Clone, Copy)]
struct Job {
    /// Borrowed closure, valid strictly until the publishing `run` call
    /// observes `active == 0`.
    f: *const (dyn Fn(usize) + Sync),
    regions: usize,
}

/// The pool's shared lock-free state. All coordination is via the atomics;
/// `job` is written by the coordinator strictly before the `generation`
/// release-store that publishes it and read by workers strictly after the
/// acquire-load that observes the bump, so the `UnsafeCell` access is
/// data-race free.
struct PoolShared {
    job: UnsafeCell<Option<Job>>,
    /// Bumped (release) once per published job; workers acquire-spin on it.
    generation: AtomicU64,
    /// Next unclaimed region: executors (workers *and* the coordinator)
    /// claim with `fetch_add`, so every region runs exactly once (SPMC
    /// work-claiming — faster executors steal the tail automatically).
    next_region: AtomicUsize,
    /// Workers still running the current job; the barrier is
    /// `active == 0`. Workers decrement with release, the coordinator
    /// acquire-spins, which orders every worker write (region buffers,
    /// ring slots) before the coordinator's reads.
    active: AtomicUsize,
    panicked: AtomicBool,
    shutdown: AtomicBool,
}

// SAFETY: see the field docs — `job` is protected by the generation /
// active-countdown protocol, everything else is atomic. `Send` is needed
// because `Arc<PoolShared>: Sync` requires it; the raw closure pointer in
// `Job` is only ever dereferenced while the publishing `run` call keeps the
// borrow alive (the `active` countdown is the proof).
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// A persistent lock-free fork-join pool of scheduling workers.
///
/// Workers spin (then yield, then micro-sleep — friendly to machines with
/// fewer cores than workers) between barriers; [`ShardPool::run`] publishes
/// one job with a single release-store, participates as an executor itself,
/// and returns once the atomic countdown hits zero — the deterministic
/// barrier of the shard protocol. No mutex or condvar is ever taken on the
/// handoff path.
pub(crate) struct ShardPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Spawns `workers` parked worker threads (callers pass `threads - 1`;
    /// the coordinator itself is the remaining executor).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            generation: AtomicU64::new(0),
            next_region: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // Executor 0 is the coordinator; workers are 1-based.
                let executor = i + 1;
                std::thread::Builder::new()
                    .name(format!("rescq-shard-{executor}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Number of executors a `run` call uses (workers + coordinator).
    pub(crate) fn executors(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(region)` once for every region in `0..regions` — each region
    /// claimed by exactly one executor via the atomic cursor — and returns
    /// after **all** of them completed (the barrier). The coordinator
    /// thread claims regions alongside the workers.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) any panic that occurred on a worker. A
    /// panicking executor abandons its remaining claims; the others drain
    /// the rest, so the barrier always completes.
    pub(crate) fn run(&self, regions: usize, f: &(dyn Fn(usize) + Sync)) {
        let s = &*self.shared;
        debug_assert_eq!(
            s.active.load(Ordering::Acquire),
            0,
            "overlapping shard jobs"
        );
        // SAFETY (lifetime erasure): the raw pointer's trait object is
        // nominally `'static`, but `f` only needs to outlive this call —
        // the barrier spin below does not return until every worker
        // finished using the pointer, and the job is cleared before
        // returning.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        // SAFETY: no worker reads `job` until it observes the generation
        // bump below; the previous job's readers all finished (active was
        // 0 on entry).
        unsafe {
            *s.job.get() = Some(Job {
                f: f_erased,
                regions,
            })
        };
        s.next_region.store(0, Ordering::Relaxed);
        s.panicked.store(false, Ordering::Relaxed);
        s.active.store(self.handles.len(), Ordering::Relaxed);
        // The release-store publishing the job, the reset cursor and the
        // countdown to every acquire-spinning worker.
        s.generation.fetch_add(1, Ordering::Release);
        // The coordinator is executor 0 and claims regions too. Its own
        // panics must NOT unwind past the barrier below: workers still hold
        // the lifetime-erased closure pointer, and unwinding would free the
        // closure (and the caller's output buffers) under them — so catch,
        // reach the barrier, and only then re-raise.
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| loop {
            let r = s.next_region.fetch_add(1, Ordering::Relaxed);
            if r >= regions {
                break;
            }
            f(r);
        }));
        // The barrier: acquire-spin until every worker checked out, which
        // also orders all their writes before our return.
        let mut spins = 0u32;
        while s.active.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // More workers than cores (or a 1-core container): make
                // sure the workers actually get scheduled.
                std::thread::yield_now();
            }
        }
        // SAFETY: every reader has checked out; drop the dangling pointer.
        unsafe { *s.job.get() = None };
        let worker_panicked = s.panicked.load(Ordering::Relaxed);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a shard scheduling worker panicked");
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_generation = 0u64;
    loop {
        // Wait (spin → yield → micro-sleep) for the next generation. The
        // sleep tier keeps idle workers near-free on machines with fewer
        // cores than executors while the spin tier keeps the barrier
        // latency in the tens of nanoseconds when cores are plentiful.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let g = shared.generation.load(Ordering::Acquire);
            if g > seen_generation {
                seen_generation = g;
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        // SAFETY: the acquire-load above synchronised with the publishing
        // release-store; the coordinator does not touch `job` again until
        // this worker decrements `active`.
        let job = unsafe { *shared.job.get() }.expect("job published with generation");
        let f = unsafe { &*job.f };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| loop {
            let r = shared.next_region.fetch_add(1, Ordering::Relaxed);
            if r >= job.regions {
                break;
            }
            f(r);
        }));
        if result.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        // Release: hands every write this worker made (region buffers,
        // ring slots) to the coordinator's acquire-spin.
        shared.active.fetch_sub(1, Ordering::Release);
    }
}

/// An MPSC proposal ring: scheduling executors publish candidate ancilla
/// indices with one `fetch_add` each (no lock, no allocation); the
/// coordinator drains the published range after the barrier and sorts it
/// into canonical ascending order.
///
/// Capacity is the fabric's ancilla count rounded up to a power of two, and
/// a single scan pass proposes each ancilla at most once — so the ring can
/// never overflow within a pass (debug-asserted). `head` grows forever and
/// indices wrap by masking, so back-to-back passes reuse the slots without
/// any reset write.
pub(crate) struct ProposalRing {
    slots: Box<[UnsafeCell<u32>]>,
    mask: usize,
    /// Next slot to claim (publishers, `fetch_add`).
    head: AtomicUsize,
    /// First undrained slot (coordinator only).
    tail: AtomicUsize,
}

// SAFETY: each slot in `[tail, head)` is written by exactly the one
// publisher whose `fetch_add` claimed it; the coordinator reads slots only
// after the pool barrier (the workers' release-decrements of `active`)
// ordered those writes before its reads.
unsafe impl Sync for ProposalRing {}

impl std::fmt::Debug for ProposalRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProposalRing")
            .field("capacity", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl ProposalRing {
    /// A ring with room for at least `capacity` in-flight proposals.
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(1);
        ProposalRing {
            slots: (0..cap).map(|_| UnsafeCell::new(0)).collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Publishes one proposal (any executor, concurrently).
    #[inline]
    pub(crate) fn publish(&self, a: u32) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        debug_assert!(
            i.wrapping_sub(self.tail.load(Ordering::Relaxed)) < self.slots.len(),
            "proposal ring overflow: >{} proposals in one pass",
            self.slots.len()
        );
        // SAFETY: the fetch_add above made `i` ours alone; see the `Sync`
        // impl for why the coordinator's later read is ordered.
        unsafe { *self.slots[i & self.mask].get() = a };
    }

    /// Discards anything still undrained (coordinator only, between
    /// passes). A no-op in normal operation — every pass drains fully —
    /// but a pass abandoned by a panic leaves `[tail, head)` non-empty,
    /// and the next pass must not replay its stale proposals.
    pub(crate) fn reset(&self) {
        self.tail
            .store(self.head.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Drains every published proposal into `out` (appended) and sorts the
    /// buffer ascending — the canonical commit order. Coordinator only,
    /// after the barrier.
    pub(crate) fn drain_sorted(&self, out: &mut Vec<u32>) {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        for i in t..h {
            // SAFETY: `[t, h)` slots were fully published before the
            // barrier; nobody writes them again until the next pass.
            out.push(unsafe { *self.slots[i & self.mask].get() });
        }
        self.tail.store(h, Ordering::Relaxed);
        out.sort_unstable();
    }
}

/// Per-region scratch a fill pass writes into. Each region buffer is
/// written by exactly the one executor that claimed the region for the
/// current job, which is what makes the unsynchronised access sound.
struct SliceWriter {
    ptr: *mut u64,
}

// SAFETY: see the write sites — executors write disjoint index ranges, and
// the pool barrier orders the writes before the coordinator's reads.
unsafe impl Sync for SliceWriter {}
unsafe impl Send for SliceWriter {}

/// The engine-facing executor: serial inline scans for `engine_threads = 1`
/// (zero overhead, the historical engine), a [`ShardPool`] plus
/// [`ProposalRing`] otherwise. Both paths produce identical output by
/// construction — the executor choice is invisible to the schedule.
#[derive(Debug)]
pub(crate) enum ShardExecutor {
    /// Inline scans on the coordinator thread.
    Serial,
    /// Region scans fanned out over a persistent lock-free worker pool,
    /// publishing through the proposal ring.
    Pooled {
        /// The persistent worker pool.
        pool: ShardPool,
        /// The MPSC proposal ring shared by all executors.
        ring: ProposalRing,
    },
}

impl ShardExecutor {
    /// Builds an executor running `threads` executors in total over a
    /// fabric of `num_ancillas` ancillas (the ring capacity bound).
    pub(crate) fn new(threads: usize, num_ancillas: usize) -> Self {
        if threads <= 1 {
            ShardExecutor::Serial
        } else {
            ShardExecutor::Pooled {
                pool: ShardPool::new(threads - 1),
                ring: ProposalRing::new(num_ancillas),
            }
        }
    }

    /// The number of executors (1 for serial).
    pub(crate) fn threads(&self) -> usize {
        match self {
            ShardExecutor::Serial => 1,
            ShardExecutor::Pooled { pool, .. } => pool.executors(),
        }
    }

    /// Evaluates `pred` for every ancilla of every region and fills `out`
    /// (cleared first) with the matching indices in ascending order. `pred`
    /// must be pure with respect to the engine state (it is called
    /// concurrently from shard workers); the result is independent of the
    /// executor variant.
    ///
    /// The engine hot path uses the word-restricted variants; this dense
    /// form is the reference implementation the tests check them against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn scan_into(
        &self,
        partition: &RegionPartition,
        pred: &(dyn Fn(u32) -> bool + Sync),
        out: &mut Vec<u32>,
    ) {
        out.clear();
        match self {
            ShardExecutor::Serial => {
                let n = partition.num_ancillas() as u32;
                out.extend((0..n).filter(|&a| pred(a)));
            }
            ShardExecutor::Pooled { pool, ring } => {
                ring.reset();
                pool.run(partition.num_regions(), &|r| {
                    for a in partition.range(r) {
                        if pred(a) {
                            ring.publish(a);
                        }
                    }
                });
                ring.drain_sorted(out);
            }
        }
    }

    /// [`Self::scan_into`] restricted to the set bits of `words` (packed
    /// occupancy words, bit `a` of word `a / 64`): `pred` is only evaluated
    /// for set ancillas, and clear ancillas never match. This is the
    /// word-parallel scan — 64 ancillas are skipped per word-compare when
    /// their queues are empty.
    pub(crate) fn scan_words_into(
        &self,
        partition: &RegionPartition,
        words: &[u64],
        pred: &(dyn Fn(u32) -> bool + Sync),
        out: &mut Vec<u32>,
    ) {
        out.clear();
        match self {
            ShardExecutor::Serial => {
                let n = partition.num_ancillas() as u32;
                for_each_set_bit_in_range(words, 0..n, |a| {
                    if pred(a) {
                        out.push(a);
                    }
                });
            }
            ShardExecutor::Pooled { pool, ring } => {
                ring.reset();
                pool.run(partition.num_regions(), &|r| {
                    for_each_set_bit_in_range(words, partition.range(r), |a| {
                        if pred(a) {
                            ring.publish(a);
                        }
                    });
                });
                ring.drain_sorted(out);
            }
        }
    }

    /// Computes `f(a)` for every ancilla `a` into `out` (cleared and
    /// resized first), fanning regions out over the executors. Equivalent
    /// to `(0..n).map(f).collect()` for any executor variant.
    ///
    /// The engine hot path uses the sparse variant; this dense form is the
    /// reference implementation the tests check it against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn fill_u64_into(
        &self,
        partition: &RegionPartition,
        f: &(dyn Fn(u32) -> u64 + Sync),
        out: &mut Vec<u64>,
    ) {
        let n = partition.num_ancillas();
        match self {
            ShardExecutor::Serial => {
                out.clear();
                out.extend((0..n as u32).map(f));
            }
            ShardExecutor::Pooled { pool, .. } => {
                out.clear();
                out.resize(n, 0);
                let slots = SliceWriter {
                    ptr: out.as_mut_ptr(),
                };
                let slots_ref = &slots;
                pool.run(partition.num_regions(), &|r| {
                    for a in partition.range(r) {
                        // SAFETY: regions are disjoint index ranges within
                        // `0..n` and each region is written by exactly one
                        // executor before the barrier; the coordinator
                        // reads `out` only after `run` returns.
                        unsafe { slots_ref.ptr.add(a as usize).write(f(a)) };
                    }
                });
            }
        }
    }

    /// Sparse [`Self::fill_u64_into`]: `out` is filled with `default` and
    /// `f(a)` is evaluated only for the set bits of `words`. Callers whose
    /// `f` degenerates to `default` on clear ancillas (e.g. the
    /// expected-free estimate of an *empty* queue) get the full dense
    /// vector at the cost of only the occupied entries.
    pub(crate) fn fill_u64_sparse_into(
        &self,
        partition: &RegionPartition,
        words: &[u64],
        default: u64,
        f: &(dyn Fn(u32) -> u64 + Sync),
        out: &mut Vec<u64>,
    ) {
        let n = partition.num_ancillas();
        out.clear();
        out.resize(n, default);
        match self {
            ShardExecutor::Serial => {
                for_each_set_bit_in_range(words, 0..n as u32, |a| {
                    out[a as usize] = f(a);
                });
            }
            ShardExecutor::Pooled { pool, .. } => {
                let slots = SliceWriter {
                    ptr: out.as_mut_ptr(),
                };
                let slots_ref = &slots;
                pool.run(partition.num_regions(), &|r| {
                    for_each_set_bit_in_range(words, partition.range(r), |a| {
                        // SAFETY: as in `fill_u64_into` — disjoint regions,
                        // one executor each, reads only after the barrier.
                        unsafe { slots_ref.ptr.add(a as usize).write(f(a)) };
                    });
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_is_contiguous_balanced_and_thread_independent() {
        for n in [1usize, 5, 31, 32, 33, 100, 421] {
            let p = RegionPartition::for_fabric(n);
            assert_eq!(p.range(0).start, 0);
            assert_eq!(p.range(p.num_regions() - 1).end as usize, n);
            assert_eq!(p.num_ancillas(), n);
            let mut sizes = Vec::new();
            for r in 0..p.num_regions() {
                let range = p.range(r);
                assert!(range.start <= range.end);
                if r > 0 {
                    assert_eq!(p.range(r - 1).end, range.start, "contiguous");
                }
                sizes.push(range.len());
                for a in range {
                    assert_eq!(p.region_of(a), r as u32, "n={n} a={a}");
                }
            }
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
        // Region count follows the fabric, not the executor.
        assert_eq!(RegionPartition::for_fabric(64).num_regions(), 2);
        assert_eq!(RegionPartition::for_fabric(65).num_regions(), 3);
    }

    #[test]
    fn explicit_region_counts_clamp() {
        assert_eq!(RegionPartition::with_regions(4, 9).num_regions(), 4);
        assert_eq!(RegionPartition::with_regions(0, 3).num_regions(), 1);
        assert_eq!(RegionPartition::with_regions(10, 3).num_regions(), 3);
    }

    #[test]
    fn pool_runs_every_region_exactly_once() {
        let pool = ShardPool::new(3);
        assert_eq!(pool.executors(), 4);
        let counts: Vec<AtomicUsize> = (0..11).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(counts.len(), &|r| {
                counts[r].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (r, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 50, "region {r}");
        }
    }

    #[test]
    fn scan_matches_serial_for_any_executor() {
        let partition = RegionPartition::for_fabric(130);
        let pred = |a: u32| a.is_multiple_of(7) || a % 11 == 3;
        let mut serial = Vec::new();
        ShardExecutor::Serial.scan_into(&partition, &pred, &mut serial);
        for threads in [2usize, 3, 8] {
            let exec = ShardExecutor::new(threads, 130);
            assert_eq!(exec.threads(), threads);
            let mut got = Vec::new();
            exec.scan_into(&partition, &pred, &mut got);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn word_scan_matches_dense_scan_for_any_executor() {
        let n = 130usize;
        let partition = RegionPartition::for_fabric(n);
        // Occupancy words with a scattered population (including word
        // boundaries 63/64/127/128).
        let mut words = vec![0u64; n.div_ceil(64)];
        let set: Vec<u32> = (0..n as u32).filter(|a| a % 3 == 1 || *a >= 126).collect();
        for &a in &set {
            words[(a / 64) as usize] |= 1 << (a % 64);
        }
        let pred = |a: u32| !a.is_multiple_of(5);
        let expect: Vec<u32> = set.iter().copied().filter(|&a| pred(a)).collect();
        for threads in [1usize, 2, 4] {
            let exec = ShardExecutor::new(threads, n);
            let mut got = Vec::new();
            exec.scan_words_into(&partition, &words, &pred, &mut got);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn fill_matches_serial_for_any_executor() {
        let partition = RegionPartition::for_fabric(97);
        let f = |a: u32| (a as u64) * 31 + 7;
        let mut serial = Vec::new();
        ShardExecutor::Serial.fill_u64_into(&partition, &f, &mut serial);
        assert_eq!(serial.len(), 97);
        for threads in [2usize, 5] {
            let exec = ShardExecutor::new(threads, 97);
            let mut got = Vec::new();
            exec.fill_u64_into(&partition, &f, &mut got);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn sparse_fill_matches_dense_semantics() {
        let n = 97usize;
        let partition = RegionPartition::for_fabric(n);
        let mut words = vec![0u64; n.div_ceil(64)];
        for a in (0..n as u32).filter(|a| a % 4 == 2) {
            words[(a / 64) as usize] |= 1 << (a % 64);
        }
        let f = |a: u32| 1000 + a as u64;
        let expect: Vec<u64> = (0..n as u32)
            .map(|a| {
                if words[(a / 64) as usize] & (1 << (a % 64)) != 0 {
                    f(a)
                } else {
                    42
                }
            })
            .collect();
        for threads in [1usize, 3] {
            let exec = ShardExecutor::new(threads, n);
            let mut got = Vec::new();
            exec.fill_u64_sparse_into(&partition, &words, 42, &f, &mut got);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn proposal_ring_wraps_across_passes() {
        // Capacity 16 ring driven through > 60 slot claims across passes:
        // head wraps the mask repeatedly and every pass still drains its
        // exact proposal set in sorted order.
        let ring = ProposalRing::new(13); // rounds up to 16
        let mut out = Vec::new();
        for pass in 0..17u32 {
            let k = (pass % 5) as usize;
            for i in 0..k {
                ring.publish(pass * 100 + (k - 1 - i) as u32);
            }
            out.clear();
            ring.drain_sorted(&mut out);
            let expect: Vec<u32> = (0..k as u32).map(|i| pass * 100 + i).collect();
            assert_eq!(out, expect, "pass {pass}");
        }
    }

    #[test]
    fn pooled_ring_scan_wraps_and_stays_serial_identical() {
        // A pooled executor whose ring is exactly ancilla-count sized,
        // driven through enough passes that slot indices wrap many times;
        // every pass must still equal the serial scan bit for bit.
        let n = 70usize;
        let partition = RegionPartition::for_fabric(n);
        let exec = ShardExecutor::new(3, n);
        let serial = ShardExecutor::Serial;
        let (mut got, mut want) = (Vec::new(), Vec::new());
        for pass in 0..40u32 {
            let pred = move |a: u32| !(a + pass).is_multiple_of(3);
            exec.scan_into(&partition, &pred, &mut got);
            serial.scan_into(&partition, &pred, &mut want);
            assert_eq!(got, want, "pass {pass}");
        }
    }

    #[test]
    fn panics_on_either_side_of_the_barrier_propagate_safely() {
        // 3 executors over 4 regions of 10. Regions are claimed
        // dynamically, so either the coordinator or a worker may hit the
        // poisoned ancilla; both paths must reach the barrier first
        // (workers still hold the borrowed closure pointer until then) and
        // then re-raise — and the pool must stay usable afterwards.
        let exec = ShardExecutor::new(3, 40);
        let partition = RegionPartition::with_regions(40, 4);
        let mut out = Vec::new();
        for poisoned in [35u32, 15] {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut buf = Vec::new();
                exec.scan_into(
                    &partition,
                    &|a| {
                        assert!(a != poisoned, "boom at {a}");
                        true
                    },
                    &mut buf,
                );
            }));
            assert!(result.is_err(), "panic at {poisoned} must not be swallowed");
            // The barrier completed: a fresh job runs to completion.
            exec.scan_into(&partition, &|_| true, &mut out);
            assert_eq!(out.len(), 40, "pool unusable after panic at {poisoned}");
        }
    }
}
