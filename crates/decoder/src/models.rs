//! The decoder models: ideal, fixed-latency union-find-style, and the
//! Triage-style adaptive parallel-window decoder.

use crate::union_find::{DecodeWork, ErrorChannel, UnionFindDecoder};
use crate::DecoderConfig;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// A classical decoder latency model.
///
/// Implementations are deterministic: the ready round is a pure function of
/// the submission history, so seeded simulations remain reproducible. Time is
/// measured in syndrome-measurement rounds (the engines' base unit).
pub trait DecoderModel: fmt::Debug {
    /// Short model name for reports.
    fn name(&self) -> &'static str;

    /// Submits a window of `rounds` syndrome rounds from `tile` at round
    /// `now`; returns the round at which the decode result becomes visible
    /// to the scheduler (always `>= now`).
    fn decode_ready_at(&mut self, tile: u32, rounds: u32, now: u64) -> u64;

    /// Drains the decode-work accounting accumulated since the last call.
    /// Latency models perform no real decode work and report zeros; the
    /// union-find decoder reports defects, growth steps and peels the
    /// runtime folds into [`DecoderStats`](crate::DecoderStats).
    fn take_work(&mut self) -> DecodeWork {
        DecodeWork::default()
    }
}

/// Zero-latency decoding: results are visible the round they are measured.
///
/// With this model the decoder subsystem is invisible and every pre-existing
/// seeded simulation output is reproduced bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealDecoder;

impl DecoderModel for IdealDecoder {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn decode_ready_at(&mut self, _tile: u32, _rounds: u32, now: u64) -> u64 {
        now
    }
}

/// A union-find-style decoder: constant reaction latency plus a per-round
/// decode cost, with one sequential decode pipeline per tile.
///
/// When `throughput < 1` the decoder processes syndrome data slower than the
/// substrate produces it, so consecutive windows on a busy tile queue behind
/// each other and the backlog grows — the decoder-limited regime.
#[derive(Debug, Clone)]
pub struct FixedLatencyDecoder {
    base_latency: u64,
    throughput: f64,
    tile_busy_until: BTreeMap<u32, u64>,
}

impl FixedLatencyDecoder {
    /// Creates the model from a configuration.
    pub fn new(config: &DecoderConfig) -> Self {
        FixedLatencyDecoder {
            base_latency: config.base_latency,
            throughput: config.throughput.max(1e-6),
            tile_busy_until: BTreeMap::new(),
        }
    }

    fn cost(&self, rounds: u32) -> u64 {
        self.base_latency + (rounds as f64 / self.throughput).ceil() as u64
    }
}

impl DecoderModel for FixedLatencyDecoder {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn decode_ready_at(&mut self, tile: u32, rounds: u32, now: u64) -> u64 {
        let busy = self.tile_busy_until.get(&tile).copied().unwrap_or(0);
        let ready = now.max(busy) + self.cost(rounds);
        self.tile_busy_until.insert(tile, ready);
        ready
    }
}

/// A Triage-style adaptive parallel-window decoder.
///
/// `W` workers drain a bounded syndrome ring buffer. A submission stalls at
/// admission when the ring is full (it cannot start before the earliest
/// in-flight window completes), then waits for the earliest free worker.
/// Under load the decoder adapts its windowing: decode throughput scales up
/// with the occupied fraction of the ring (batching amortizes the per-window
/// overhead), which is what lets it absorb rotation bursts that would drown
/// a fixed single pipeline.
#[derive(Debug, Clone)]
pub struct AdaptiveDecoder {
    base_latency: u64,
    throughput: f64,
    workers: Vec<u64>,
    ring_capacity: usize,
    /// Ready rounds of in-flight windows (min-heap).
    in_flight: BinaryHeap<Reverse<u64>>,
}

impl AdaptiveDecoder {
    /// Creates the model from a configuration.
    pub fn new(config: &DecoderConfig) -> Self {
        AdaptiveDecoder {
            base_latency: config.base_latency,
            throughput: config.throughput.max(1e-6),
            workers: vec![0; config.workers.max(1)],
            ring_capacity: config.ring_capacity.max(1),
            in_flight: BinaryHeap::new(),
        }
    }

    /// Windows still undecoded at `now` (ring occupancy).
    fn drain_completed(&mut self, now: u64) {
        while self.in_flight.peek().is_some_and(|Reverse(r)| *r <= now) {
            self.in_flight.pop();
        }
    }
}

impl DecoderModel for AdaptiveDecoder {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn decode_ready_at(&mut self, _tile: u32, rounds: u32, now: u64) -> u64 {
        self.drain_completed(now);
        // Admission: a full ring delays the window until slots free up.
        let mut admitted = now;
        while self.in_flight.len() >= self.ring_capacity {
            let Reverse(earliest) = self.in_flight.pop().expect("ring non-empty");
            admitted = admitted.max(earliest);
        }
        // Adaptive batching: the fuller the ring, the larger the merged
        // decode windows and the better the amortized throughput.
        let occupancy = self.in_flight.len() as f64 / self.ring_capacity as f64;
        let effective_tp = self.throughput * (1.0 + occupancy);
        let cost = self.base_latency + (rounds as f64 / effective_tp).ceil() as u64;
        // Earliest free worker takes the window.
        let (slot, free_at) = self
            .workers
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("at least one worker");
        let start = admitted.max(free_at);
        let ready = start + cost;
        self.workers[slot] = ready;
        self.in_flight.push(Reverse(ready));
        ready
    }
}

/// Instantiates the model a configuration names. `distance` sizes the
/// union-find detector graphs and `channel` feeds its error sampling; the
/// latency models ignore both.
pub fn build_model(
    config: &DecoderConfig,
    distance: u32,
    channel: ErrorChannel,
) -> Box<dyn DecoderModel + Send + Sync> {
    use crate::DecoderKind;
    match config.kind {
        DecoderKind::Ideal => Box::new(IdealDecoder),
        DecoderKind::Fixed => Box::new(FixedLatencyDecoder::new(config)),
        DecoderKind::Adaptive => Box::new(AdaptiveDecoder::new(config)),
        DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(config, distance, channel)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_instant() {
        let mut m = IdealDecoder;
        assert_eq!(m.decode_ready_at(0, 100, 42), 42);
    }

    #[test]
    fn fixed_accumulates_backlog_per_tile() {
        let mut m = FixedLatencyDecoder::new(&DecoderConfig::fixed(1.0));
        let r1 = m.decode_ready_at(0, 7, 0); // 0 + 1 + 7 = 8
        assert_eq!(r1, 8);
        let r2 = m.decode_ready_at(0, 7, 0); // queued behind r1
        assert_eq!(r2, 16);
        let other = m.decode_ready_at(1, 7, 0); // independent pipeline
        assert_eq!(other, 8);
    }

    #[test]
    fn fixed_lower_throughput_is_slower() {
        for rounds in [1u32, 7, 63] {
            let mut fast = FixedLatencyDecoder::new(&DecoderConfig::fixed(2.0));
            let mut slow = FixedLatencyDecoder::new(&DecoderConfig::fixed(0.25));
            assert!(
                slow.decode_ready_at(0, rounds, 10) >= fast.decode_ready_at(0, rounds, 10),
                "rounds={rounds}"
            );
        }
    }

    #[test]
    fn adaptive_workers_run_in_parallel() {
        let mut cfg = DecoderConfig::adaptive(1.0, 2);
        cfg.base_latency = 0;
        let mut m = AdaptiveDecoder::new(&cfg);
        let a = m.decode_ready_at(0, 10, 0);
        let b = m.decode_ready_at(1, 10, 0);
        // Two workers: both windows decode concurrently (the second is a
        // touch faster thanks to adaptive batching at higher occupancy).
        assert_eq!(a, 10);
        assert!(b <= a);
        let c = m.decode_ready_at(2, 10, 0);
        assert!(c > 0, "third window must wait for a worker");
    }

    #[test]
    fn adaptive_ring_bounds_admission() {
        let mut cfg = DecoderConfig::adaptive(1.0, 1);
        cfg.ring_capacity = 2;
        cfg.base_latency = 0;
        let mut m = AdaptiveDecoder::new(&cfg);
        let first = m.decode_ready_at(0, 10, 0);
        let _second = m.decode_ready_at(0, 10, 0);
        let third = m.decode_ready_at(0, 10, 0);
        assert!(
            third >= first,
            "full ring delays admission past the earliest completion"
        );
    }

    #[test]
    fn build_model_matches_kind() {
        use crate::DecoderKind;
        for (kind, name) in [
            (DecoderKind::Ideal, "ideal"),
            (DecoderKind::Fixed, "fixed"),
            (DecoderKind::Adaptive, "adaptive"),
            (DecoderKind::UnionFind, "union_find"),
        ] {
            let cfg = DecoderConfig {
                kind,
                ..DecoderConfig::default()
            };
            assert_eq!(build_model(&cfg, 3, ErrorChannel::default()).name(), name);
        }
    }

    #[test]
    fn latency_models_report_zero_work() {
        let mut m = FixedLatencyDecoder::new(&DecoderConfig::fixed(1.0));
        m.decode_ready_at(0, 7, 0);
        assert_eq!(m.take_work(), DecodeWork::default());
    }
}
