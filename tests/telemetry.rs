//! Telemetry contract tests: tracing must be inert (observing a run can
//! never change it), and the Chrome trace export must keep its schema.
//!
//! The inertness property is the load-bearing one — the whole telemetry
//! design rests on stall counters being sim-time derived and wall-clock
//! never reaching any report field that CSV emission reads. These tests
//! pin that contract from the outside, through the same code paths the
//! CLI uses.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rescq_repro::circuit::{Angle, Circuit, Gate};
use rescq_repro::core::SchedulerKind;
use rescq_repro::decoder::DecoderConfig;
use rescq_repro::sim::{metrics_snapshot, simulate_traced, ExecutionReport, SimConfig};
use rescq_repro::telemetry::{
    analyze_events, normalize_timestamps, parse_trace, validate_trace, AnalyzeReport, RingRecorder,
};
use std::path::Path;

const CASES: u64 = 8;

/// Runs `body` once per case with a per-case RNG; panics name the case
/// so failures replay exactly (same harness as `property_tests.rs`).
fn for_each_case(name: &str, body: impl Fn(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x7E1E_0000 ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

fn arb_circuit(rng: &mut ChaCha8Rng) -> Circuit {
    let n = rng.gen_range(2u32..6);
    let len = rng.gen_range(4usize..28);
    let gates: Vec<Gate> = (0..len)
        .map(|_| {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..4u32) {
                0 => Gate::h(q),
                1 => Gate::rz(q, Angle::T),
                2 => Gate::rz(q, Angle::radians(rng.gen_range(0.01f64..2.5))),
                _ => {
                    let c = rng.gen_range(0..n);
                    let mut t = rng.gen_range(0..n - 1);
                    if t >= c {
                        t += 1;
                    }
                    Gate::cnot(c, t)
                }
            }
        })
        .collect();
    Circuit::from_gates(n, gates).unwrap()
}

/// Renders reports through the CLI's CSV writer and returns the bytes.
fn reports_csv(reports: &[ExecutionReport]) -> Vec<u8> {
    let dir = std::env::temp_dir().join("rescq_telemetry_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("reports_{}.csv", std::process::id()));
    rescq_cli::output::write_reports_csv(&path, reports).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

/// The central telemetry contract: attaching a recorder changes nothing
/// observable. For random circuits, 1/2/4 engine threads and both the
/// ideal and the union-find decoder, the reports CSV of a traced run is
/// byte-identical to the untraced run — including the stall-attribution
/// and decode-work columns, which are computed whether or not anyone is
/// recording. The union-find rows matter most: the decoder samples its
/// own error stream and reports real cluster-growth work, all of which
/// must be a function of the schedule alone.
#[test]
fn tracing_is_inert() {
    for_each_case("tracing_is_inert", |rng| {
        let circuit = arb_circuit(rng);
        let seed = rng.gen_range(1u64..1000);
        for threads in [1usize, 2, 4] {
            for decoder in [DecoderConfig::ideal(), DecoderConfig::union_find(4.0)] {
                let config = SimConfig::builder()
                    .scheduler(SchedulerKind::Rescq)
                    .seed(seed)
                    .engine_threads(threads)
                    .decoder(decoder)
                    .build();
                let untraced = simulate_traced(&circuit, &config, None).unwrap();
                let recorder = RingRecorder::new();
                let traced = simulate_traced(&circuit, &config, Some(&recorder)).unwrap();
                assert!(
                    !recorder.events().is_empty(),
                    "a traced realtime run must record events"
                );
                assert_eq!(
                    reports_csv(std::slice::from_ref(&untraced)),
                    reports_csv(std::slice::from_ref(&traced)),
                    "reports CSV must be byte-identical with tracing on vs. off \
                     (threads={threads}, decoder={decoder})"
                );
                // The metrics snapshot is schedule-derived end to end (no
                // wall-clock fields), so it must be byte-identical too.
                assert_eq!(
                    metrics_snapshot(&untraced).to_json(),
                    metrics_snapshot(&traced).to_json(),
                    "metrics snapshot must be byte-identical with tracing on vs. \
                     off (threads={threads}, decoder={decoder})"
                );
            }
        }
    });
}

/// Traces a run and analyzes the recorded stream.
fn analyze_run(circuit: &Circuit, config: &SimConfig) -> AnalyzeReport {
    let recorder = RingRecorder::new();
    simulate_traced(circuit, config, Some(&recorder)).unwrap();
    let events: Vec<_> = recorder.events().iter().map(|t| t.event).collect();
    analyze_events(&events, recorder.dropped(), false)
}

/// Analytics invariants, for random circuits: every per-ancilla occupancy
/// fraction is a valid fraction, and the whole analyze report — built
/// from sim-time rounds only — is identical at 1, 2 and 4 engine threads
/// (the trace stream is a function of the schedule, which is sharding-
/// invariant). Half the cases run the union-find decoder, whose sampled
/// error stream and emergent window latencies must obey the same
/// invariance.
#[test]
fn utilization_fractions_are_valid_and_thread_invariant() {
    for_each_case(
        "utilization_fractions_are_valid_and_thread_invariant",
        |rng| {
            let circuit = arb_circuit(rng);
            let seed = rng.gen_range(1u64..1000);
            let decoder = if rng.gen_bool(0.5) {
                DecoderConfig::union_find(rng.gen_range(2.0f64..16.0))
            } else {
                DecoderConfig::ideal()
            };
            let mut reports = Vec::new();
            for threads in [1usize, 2, 4] {
                let config = SimConfig::builder()
                    .scheduler(SchedulerKind::Rescq)
                    .seed(seed)
                    .engine_threads(threads)
                    .decoder(decoder)
                    .build();
                let report = analyze_run(&circuit, &config);
                for u in &report.utilization {
                    assert!(
                        (0.0..=1.0).contains(&u.busy_fraction),
                        "busy fraction {} of a{} out of range (threads={threads})",
                        u.busy_fraction,
                        u.ancilla
                    );
                    assert!(
                        (0.0..=1.0).contains(&u.contended_fraction),
                        "contended fraction {} of a{} out of range (threads={threads})",
                        u.contended_fraction,
                        u.ancilla
                    );
                }
                reports.push(report.to_json(usize::MAX));
            }
            assert_eq!(
                reports[0], reports[1],
                "analyze report must not depend on engine_threads (1 vs 2)"
            );
            assert_eq!(
                reports[0], reports[2],
                "analyze report must not depend on engine_threads (1 vs 4)"
            );
        },
    );
}

/// The same run traced twice yields the same normalized trace: event
/// structure and ordering are functions of the schedule alone, only the
/// wall-clock timestamps differ.
#[test]
fn normalized_trace_is_deterministic() {
    let mut c = Circuit::new(3);
    c.h(0).cnot(0, 1).rz(1, Angle::T).cnot(1, 2).rz(2, Angle::T);
    let config = SimConfig::builder()
        .scheduler(SchedulerKind::Rescq)
        .seed(11)
        .build();
    let traces: Vec<String> = (0..2)
        .map(|_| {
            let recorder = RingRecorder::new();
            simulate_traced(&c, &config, Some(&recorder)).unwrap();
            normalize_timestamps(&recorder.to_chrome_trace())
        })
        .collect();
    assert_eq!(traces[0], traces[1]);
}

/// Golden-pins the normalized Chrome trace of a tiny fixed run, and
/// checks the export against the schema validator. Regenerate with
/// `RESCQ_BLESS=1 cargo test --test telemetry`.
#[test]
fn tiny_trace_matches_golden_and_validates() {
    let mut c = Circuit::new(2);
    c.h(0).cnot(0, 1).rz(1, Angle::T);
    let config = SimConfig::builder()
        .scheduler(SchedulerKind::Rescq)
        .seed(7)
        .build();
    let recorder = RingRecorder::new();
    simulate_traced(&c, &config, Some(&recorder)).unwrap();
    let trace = recorder.to_chrome_trace();

    let stats = validate_trace(&trace).expect("exported trace must be schema-valid");
    assert!(stats.spans > 0, "phase spans must be present");
    assert!(stats.instants > 0, "instant events must be present");
    assert_eq!(recorder.dropped(), 0, "tiny run must not overflow the ring");

    let normalized = normalize_timestamps(&trace);
    validate_trace(&normalized).expect("normalization must preserve validity");
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_tiny.json");
    if std::env::var_os("RESCQ_BLESS").is_some() {
        std::fs::write(&golden_path, &normalized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden trace missing — run with RESCQ_BLESS=1 to create it");
    assert_eq!(
        normalized, golden,
        "normalized trace diverged from tests/golden/trace_tiny.json; \
         if the event taxonomy changed intentionally, re-bless with RESCQ_BLESS=1"
    );
}

/// Golden-pins the text bottleneck report of the tiny golden trace: the
/// whole analyze pipeline (trace parse → event decode → critical path →
/// occupancy integration → rendering) against one known-good document.
/// Regenerate with `RESCQ_BLESS=1 cargo test --test telemetry`.
#[test]
fn tiny_analyze_report_matches_golden() {
    // When blessing, regenerate the trace inline (same run as
    // `tiny_trace_matches_golden_and_validates`) instead of reading the
    // golden file — the two bless writes would otherwise race within one
    // parallel test run.
    let trace = if std::env::var_os("RESCQ_BLESS").is_some() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, Angle::T);
        let config = SimConfig::builder()
            .scheduler(SchedulerKind::Rescq)
            .seed(7)
            .build();
        let recorder = RingRecorder::new();
        simulate_traced(&c, &config, Some(&recorder)).unwrap();
        normalize_timestamps(&recorder.to_chrome_trace())
    } else {
        let trace_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_tiny.json");
        std::fs::read_to_string(&trace_path)
            .expect("golden trace missing — run with RESCQ_BLESS=1 to create it")
    };
    let parsed = parse_trace(&trace).expect("golden trace must parse");
    assert!(!parsed.truncated, "golden trace must be complete");
    let report = analyze_events(&parsed.events, parsed.dropped, parsed.truncated);
    assert!(
        !report.critical_path.is_empty(),
        "tiny run must yield a critical path"
    );
    let rendered = report.render_text(8);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/analyze_tiny.txt");
    if std::env::var_os("RESCQ_BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden report missing — run with RESCQ_BLESS=1 to create it");
    assert_eq!(
        rendered, golden,
        "analyze report diverged from tests/golden/analyze_tiny.txt; \
         if the report format changed intentionally, re-bless with RESCQ_BLESS=1"
    );
}
