//! Offline vendored micro-benchmark harness.
//!
//! The container cannot fetch crates.io, so this shim provides the subset of
//! the criterion 0.5 API the workspace's `benches/` use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is wall-clock
//! via `Instant`; each benchmark reports the mean and minimum per-iteration
//! time over `sample_size` samples. No statistics beyond that — good enough
//! to compare hot paths, not a criterion replacement.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one routine call per setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!("{name:<44} mean {mean:>12.2?}   min {min:>12.2?}   ({n} samples)");
        self
    }
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up pass, untimed.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group as a plain function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = shim;
        config = Criterion::default().sample_size(3);
        targets = body
    }

    #[test]
    fn group_runs() {
        shim();
    }
}
