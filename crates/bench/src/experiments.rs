//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each function returns plain row structs; the bench targets and the `sim`
//! CLI print them (and write CSV). Sizes are controlled by
//! [`ExperimentScale`] so `cargo bench` stays fast by default while
//! `RESCQ_BENCH_FULL=1` (or the CLI) runs the paper-sized sweep.

use rescq_core::{KPolicy, SchedulerKind};
use rescq_decoder::{DecoderConfig, DecoderKind};
use rescq_harness::{run_sweep, CacheStats, DecoderPoint, RunOptions, SweepSpec};
use rescq_rus::{PreparationModel, RusParams, TFactoryModel};
use rescq_sim::runner::{geomean, run_seeds, SweepSummary};
use rescq_sim::{LatencyHistogram, SimConfig, SimError};
use rescq_workloads::{BenchmarkSpec, ALL_BENCHMARKS, REPRESENTATIVE};

/// The `k` values the paper evaluates (§5.1).
pub const K_VALUES: [u32; 4] = [25, 50, 100, 200];
/// The code distances of Fig 11.
pub const DISTANCES: [u32; 6] = [3, 5, 7, 9, 11, 13];
/// The physical error rates of Fig 12 (`p = 10^-x`).
pub const ERROR_RATES: [f64; 4] = [1e-3, 1e-4, 1e-5, 1e-6];
/// The compression fractions of Fig 14.
pub const COMPRESSIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Sweep sizing.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Seeds per configuration.
    pub seeds: u64,
    /// Worker threads.
    pub threads: usize,
    /// Use the representative benchmark subset instead of all 23.
    pub quick: bool,
}

impl ExperimentScale {
    /// Reduced scale for `cargo bench` (3 seeds, representative subset plus
    /// a few small extras).
    pub fn reduced() -> Self {
        ExperimentScale {
            seeds: 3,
            threads: num_threads(),
            quick: true,
        }
    }

    /// Paper scale: all benchmarks, 10 seeds.
    pub fn full() -> Self {
        ExperimentScale {
            seeds: 10,
            threads: num_threads(),
            quick: false,
        }
    }

    /// Reads `RESCQ_BENCH_FULL` to pick a scale.
    pub fn from_env() -> Self {
        match std::env::var("RESCQ_BENCH_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Self::full(),
            _ => Self::reduced(),
        }
    }

    /// The benchmark set this scale sweeps.
    pub fn benchmarks(&self) -> Vec<&'static BenchmarkSpec> {
        if self.quick {
            // Representative subset (§5.2) plus small circuits from each
            // suite so the quick sweep still spans the density range.
            [
                "dnn_n16",
                "gcm_n13",
                "qft_n18",
                "wstate_n27",
                "ising_n34",
                "VQE_n13",
            ]
            .iter()
            .filter_map(|n| rescq_workloads::find(n))
            .collect()
        } else {
            ALL_BENCHMARKS.iter().collect()
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn base_config() -> SimConfig {
    // The paper's headline configuration: d = 7, p = 1e-4.
    SimConfig::default()
}

fn sweep(
    spec: &BenchmarkSpec,
    config: &SimConfig,
    scale: &ExperimentScale,
) -> Result<SweepSummary, SimError> {
    let circuit = spec.generate(1);
    run_seeds(&circuit, config, 1, scale.seeds, scale.threads)
}

// ---------------------------------------------------------------------
// Figure 10 — headline comparison
// ---------------------------------------------------------------------

/// One benchmark's Fig 10 bar group.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Mean cycles per scheduler `(greedy, autobraid, rescq*)`.
    pub mean_cycles: [f64; 3],
    /// Min/max cycles for RESCQ* (the error bars).
    pub rescq_min_max: (f64, f64),
    /// Best `k` for RESCQ*.
    pub best_k: u32,
}

impl Fig10Row {
    /// Speedup of RESCQ* over the better baseline.
    pub fn speedup(&self) -> f64 {
        self.mean_cycles[0].min(self.mean_cycles[1]) / self.mean_cycles[2]
    }
}

/// Runs the Fig 10 experiment: normalized execution time of greedy,
/// AutoBraid and RESCQ* (best k ∈ {25, 50, 100, 200}) at d = 7, p = 10⁻⁴.
/// Returns rows plus the geomean speedup (the paper reports ≈ 2×).
pub fn fig10(scale: &ExperimentScale) -> Result<(Vec<Fig10Row>, f64), SimError> {
    let mut rows = Vec::new();
    for spec in scale.benchmarks() {
        let mut mean_cycles = [0.0f64; 3];
        for (i, sched) in [SchedulerKind::Greedy, SchedulerKind::Autobraid]
            .iter()
            .enumerate()
        {
            let mut cfg = base_config();
            cfg.scheduler = *sched;
            mean_cycles[i] = sweep(spec, &cfg, scale)?.mean_cycles();
        }
        let mut best: Option<(f64, u32, SweepSummary)> = None;
        for k in K_VALUES {
            let mut cfg = base_config();
            cfg.scheduler = SchedulerKind::Rescq;
            cfg.k_policy = KPolicy::Fixed(k);
            let s = sweep(spec, &cfg, scale)?;
            let m = s.mean_cycles();
            if best.as_ref().is_none_or(|b| m < b.0) {
                best = Some((m, k, s));
            }
        }
        let (m, best_k, summary) = best.expect("at least one k");
        mean_cycles[2] = m;
        rows.push(Fig10Row {
            name: spec.name,
            mean_cycles,
            rescq_min_max: (summary.min_cycles(), summary.max_cycles()),
            best_k,
        });
    }
    let speedups: Vec<f64> = rows.iter().map(Fig10Row::speedup).collect();
    let gm = geomean(&speedups);
    Ok((rows, gm))
}

// ---------------------------------------------------------------------
// Figure 5 — latency histograms
// ---------------------------------------------------------------------

/// Merged latency histograms for one scheduler, accumulated over all
/// benchmarks (Fig 5).
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// The scheduler.
    pub scheduler: SchedulerKind,
    /// CNOT completion latency after scheduling.
    pub cnot: LatencyHistogram,
    /// Rz completion latency including corrections.
    pub rz: LatencyHistogram,
}

/// Runs the Fig 5 experiment for AutoBraid vs RESCQ.
pub fn fig5(scale: &ExperimentScale) -> Result<Vec<Fig5Data>, SimError> {
    let mut out = Vec::new();
    for sched in [SchedulerKind::Autobraid, SchedulerKind::Rescq] {
        let mut cnot = LatencyHistogram::new();
        let mut rz = LatencyHistogram::new();
        for spec in scale.benchmarks() {
            let mut cfg = base_config();
            cfg.scheduler = sched;
            let s = sweep(spec, &cfg, scale)?;
            cnot.merge(&s.merged_cnot_latency());
            rz.merge(&s.merged_rz_latency());
        }
        out.push(Fig5Data {
            scheduler: sched,
            cnot,
            rz,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Figures 11–14 — sensitivity sweeps
// ---------------------------------------------------------------------

/// One point of a sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityPoint {
    /// Benchmark name.
    pub name: &'static str,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// The swept parameter value (d, −log₁₀ p, k, or compression %).
    pub x: f64,
    /// Mean total cycles.
    pub mean_cycles: f64,
    /// Mean data-qubit idle fraction.
    pub idle_fraction: f64,
    /// Achieved compression (Fig 14 only; otherwise 0).
    pub achieved_compression: f64,
}

fn representative_specs(scale: &ExperimentScale) -> Vec<&'static BenchmarkSpec> {
    if scale.quick {
        REPRESENTATIVE
            .iter()
            .filter(|n| **n != "qft_n160") // keep the quick sweep fast
            .chain(["qft_n18"].iter())
            .filter_map(|n| rescq_workloads::find(n))
            .collect()
    } else {
        REPRESENTATIVE
            .iter()
            .filter_map(|n| rescq_workloads::find(n))
            .collect()
    }
}

/// Fig 11: sensitivity to code distance (p = 10⁻⁴, k = 25).
pub fn fig11(scale: &ExperimentScale) -> Result<Vec<SensitivityPoint>, SimError> {
    let mut out = Vec::new();
    for spec in representative_specs(scale) {
        for sched in SchedulerKind::ALL {
            for d in DISTANCES {
                let mut cfg = base_config();
                cfg.scheduler = sched;
                cfg.distance = d;
                let s = sweep(spec, &cfg, scale)?;
                out.push(SensitivityPoint {
                    name: spec.name,
                    scheduler: sched,
                    x: d as f64,
                    mean_cycles: s.mean_cycles(),
                    idle_fraction: s.mean_idle_fraction(),
                    achieved_compression: 0.0,
                });
            }
        }
    }
    Ok(out)
}

/// Fig 12: sensitivity to physical error rate (d = 7, k = 25).
pub fn fig12(scale: &ExperimentScale) -> Result<Vec<SensitivityPoint>, SimError> {
    let mut out = Vec::new();
    for spec in representative_specs(scale) {
        for sched in SchedulerKind::ALL {
            for p in ERROR_RATES {
                let mut cfg = base_config();
                cfg.scheduler = sched;
                cfg.physical_error_rate = p;
                let s = sweep(spec, &cfg, scale)?;
                out.push(SensitivityPoint {
                    name: spec.name,
                    scheduler: sched,
                    x: -p.log10(),
                    mean_cycles: s.mean_cycles(),
                    idle_fraction: s.mean_idle_fraction(),
                    achieved_compression: 0.0,
                });
            }
        }
    }
    Ok(out)
}

/// Fig 13: RESCQ's sensitivity to the MST period k across d and p.
pub fn fig13(scale: &ExperimentScale) -> Result<Vec<SensitivityPoint>, SimError> {
    let mut out = Vec::new();
    for spec in representative_specs(scale) {
        for k in K_VALUES {
            for d in [3, 7, 13] {
                let mut cfg = base_config();
                cfg.distance = d;
                cfg.k_policy = KPolicy::Fixed(k);
                let s = sweep(spec, &cfg, scale)?;
                out.push(SensitivityPoint {
                    name: spec.name,
                    scheduler: SchedulerKind::Rescq,
                    x: k as f64 + d as f64 / 100.0, // encode (k, d) in one axis
                    mean_cycles: s.mean_cycles(),
                    idle_fraction: s.mean_idle_fraction(),
                    achieved_compression: 0.0,
                });
            }
        }
    }
    Ok(out)
}

/// Fig 14: sensitivity to grid compression (d = 7, p = 10⁻⁴).
pub fn fig14(scale: &ExperimentScale) -> Result<Vec<SensitivityPoint>, SimError> {
    let mut out = Vec::new();
    for spec in representative_specs(scale) {
        for sched in SchedulerKind::ALL {
            for comp in COMPRESSIONS {
                let mut cfg = base_config();
                cfg.scheduler = sched;
                cfg.compression = comp;
                let s = sweep(spec, &cfg, scale)?;
                let achieved = s
                    .reports
                    .first()
                    .map(|r| r.achieved_compression)
                    .unwrap_or(0.0);
                out.push(SensitivityPoint {
                    name: spec.name,
                    scheduler: sched,
                    x: comp * 100.0,
                    mean_cycles: s.mean_cycles(),
                    idle_fraction: s.mean_idle_fraction(),
                    achieved_compression: achieved,
                });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Decoder sweep — total cycles vs classical-decoder throughput
// ---------------------------------------------------------------------

/// Decoder throughputs swept, in decreasing order (syndrome rounds decoded
/// per wall-clock round); the leading `f64::INFINITY` stands for the ideal
/// decoder. The grid is coarse (×2 steps) so the latency signal dominates
/// the seed-level scheduling noise a decoder shift induces.
pub const DECODER_THROUGHPUTS: [f64; 5] = [f64::INFINITY, 2.0, 1.0, 0.5, 0.25];

/// One point of the decoder sweep.
#[derive(Debug, Clone)]
pub struct DecoderSweepRow {
    /// Workload name.
    pub name: &'static str,
    /// Decoder kind at this point.
    pub decoder: DecoderKind,
    /// Decoder throughput (`inf` = ideal).
    pub throughput: f64,
    /// Mean total cycles across seeds.
    pub mean_cycles: f64,
    /// Mean decoder stall cycles across seeds.
    pub mean_stall_cycles: f64,
    /// Largest decode backlog observed in any seed.
    pub peak_backlog: u64,
}

/// Sweeps classical-decoder throughput on the decoder-stress workload under
/// the RESCQ scheduler. Returns the rows (throughput descending) and whether
/// mean total cycles were monotonically non-decreasing as throughput
/// dropped — the decoder-limited regime emerging from the
/// preparation-limited one.
pub fn decoder_sweep(scale: &ExperimentScale) -> Result<(Vec<DecoderSweepRow>, bool), SimError> {
    decoder_sweep_with_stats(scale).map(|(rows, monotone, _)| (rows, monotone))
}

/// [`decoder_sweep`] plus the harness's artifact-cache counters: the whole
/// grid shares one circuit generation and one fabric build, which is the
/// point of routing the sweep through `rescq-harness`.
pub fn decoder_sweep_with_stats(
    scale: &ExperimentScale,
) -> Result<(Vec<DecoderSweepRow>, bool, CacheStats), SimError> {
    let name: &'static str = if scale.quick {
        "decoder_stress_n9"
    } else {
        "decoder_stress_n16"
    };
    // Changing decoder latency perturbs the whole schedule (and with it the
    // RUS outcome draws), so single-seed cycle counts are noisy; a floor of
    // 5 seeds keeps the sweep's means comparable across throughputs.
    let spec = SweepSpec {
        workloads: vec![name.to_string()],
        decoders: DECODER_THROUGHPUTS
            .iter()
            .map(|&tp| {
                DecoderPoint::from(if tp.is_infinite() {
                    DecoderConfig::ideal()
                } else {
                    DecoderConfig::fixed(tp)
                })
            })
            .collect(),
        seeds: scale.seeds.max(5),
        ..SweepSpec::default()
    };
    let results = run_sweep(&spec, &RunOptions::with_threads(scale.threads))
        .map_err(|e| SimError::BadInput(e.to_string()))?;
    if let Some(e) = results.first_error() {
        return Err(SimError::BadInput(e.to_string()));
    }
    // Points expand in decoder order, so summaries line up with
    // DECODER_THROUGHPUTS (descending).
    let rows: Vec<DecoderSweepRow> = results
        .summaries()
        .iter()
        .zip(DECODER_THROUGHPUTS)
        .map(|(s, tp)| DecoderSweepRow {
            name,
            decoder: s.job.config.decoder.kind,
            throughput: tp,
            mean_cycles: s.mean_cycles,
            mean_stall_cycles: s.mean_stall_cycles,
            peak_backlog: s.peak_backlog,
        })
        .collect();
    let monotone = rows
        .windows(2)
        .all(|w| w[1].mean_cycles >= w[0].mean_cycles - 1e-9);
    Ok((rows, monotone, results.cache))
}

// ---------------------------------------------------------------------
// Figure 16 / Appendix A — RUS preparation model
// ---------------------------------------------------------------------

/// One point of Fig 16.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Row {
    /// Code distance.
    pub d: u32,
    /// Physical error rate.
    pub p: f64,
    /// Analytic expected cycles to prepare `|mθ⟩`.
    pub expected_cycles: f64,
    /// Analytic expected attempts.
    pub expected_attempts: f64,
}

/// The Fig 16 grid: expected preparation cycles and attempts over d and p.
pub fn fig16() -> Vec<Fig16Row> {
    let mut out = Vec::new();
    for d in DISTANCES {
        for p in ERROR_RATES {
            let m = PreparationModel::new(RusParams::new(d, p));
            out.push(Fig16Row {
                d,
                p,
                expected_cycles: m.expected_cycles(),
                expected_attempts: m.expected_attempts(),
            });
        }
    }
    out
}

/// The Appendix A.2 comparison rows.
#[derive(Debug, Clone, Copy)]
pub struct A2Row {
    /// Expected RUS cycles per Rz (≈ 8.4 in the paper).
    pub rus_cycles: f64,
    /// Clifford+T cycle range per Rz (200–1300 in the paper).
    pub t_range: (u64, u64),
    /// Overhead range (20–150× in the paper).
    pub overhead: (f64, f64),
}

/// Computes the Appendix A.2 headline comparison.
pub fn appendix_a2() -> A2Row {
    let prep = PreparationModel::new(RusParams::new(3, 1e-3)); // worst Fig 16 corner
    let factory = TFactoryModel::default();
    A2Row {
        rus_cycles: rescq_rus::rus_rz_expected_cycles(&prep),
        t_range: factory.rz_cycle_range(),
        overhead: rescq_rus::clifford_t_overhead(&prep, &factory),
    }
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// One row of the regenerated Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite label.
    pub suite: &'static str,
    /// Qubits.
    pub qubits: u32,
    /// Paper's (#Rz, #CNOT).
    pub paper: (usize, usize),
    /// Our generator's (#Rz, #CNOT).
    pub generated: (usize, usize),
}

/// Regenerates Table 3 and compares against the paper's counts.
pub fn table3() -> Vec<Table3Row> {
    ALL_BENCHMARKS
        .iter()
        .map(|spec| {
            let stats = spec.generate(1).stats();
            Table3Row {
                name: spec.name,
                suite: match spec.suite {
                    rescq_workloads::Suite::Large => "large",
                    rescq_workloads::Suite::Medium => "medium",
                    rescq_workloads::Suite::Supermarq => "supermarq",
                },
                qubits: spec.qubits,
                paper: (spec.paper_rz, spec.paper_cnot),
                generated: (stats.rz, stats.cnot),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_grid_covers_sweep() {
        let rows = fig16();
        assert_eq!(rows.len(), DISTANCES.len() * ERROR_RATES.len());
        // Shape: cycles fall with d at fixed p.
        let at_p4: Vec<&Fig16Row> = rows.iter().filter(|r| r.p == 1e-4).collect();
        assert!(at_p4
            .windows(2)
            .all(|w| w[1].expected_cycles < w[0].expected_cycles));
    }

    #[test]
    fn a2_matches_paper_ranges() {
        let a2 = appendix_a2();
        assert!((7.0..11.0).contains(&a2.rus_cycles));
        assert_eq!(a2.t_range, (200, 1300));
        assert!(a2.overhead.0 > 15.0 && a2.overhead.1 < 200.0);
    }

    #[test]
    fn table3_rows_complete() {
        let rows = table3();
        assert_eq!(rows.len(), 23);
        let exact = rows.iter().filter(|r| r.paper == r.generated).count();
        assert!(exact >= 21, "only {exact} rows match Table 3 exactly");
    }

    #[test]
    fn decoder_sweep_is_monotone() {
        // The acceptance bar for the decoder subsystem: total cycles must
        // not *decrease* when the classical decoder gets slower.
        let scale = ExperimentScale {
            seeds: 3,
            threads: num_threads(),
            quick: true,
        };
        let (rows, monotone) = decoder_sweep(&scale).expect("sweep runs");
        assert_eq!(rows.len(), DECODER_THROUGHPUTS.len());
        assert!(
            monotone,
            "cycles must be non-decreasing as throughput drops: {:?}",
            rows.iter().map(|r| r.mean_cycles).collect::<Vec<_>>()
        );
        // The slowest decoder must actually bite (strictly more cycles and
        // real stall time vs ideal).
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.mean_cycles > first.mean_cycles);
        assert_eq!(first.mean_stall_cycles, 0.0);
        assert!(last.mean_stall_cycles > 0.0);
    }

    #[test]
    fn decoder_sweep_shares_artifacts_and_matches_direct_runner() {
        let scale = ExperimentScale {
            seeds: 3,
            threads: 2,
            quick: true,
        };
        let (rows, _, stats) = decoder_sweep_with_stats(&scale).expect("sweep runs");
        // The whole 5-point grid shares one circuit and one fabric build.
        assert_eq!(stats.circuit_builds, 1);
        assert_eq!(stats.layout_builds, 1);
        assert!(stats.circuit_hits >= 4);
        // Routing through the harness must not change any number: each point
        // equals the pre-harness per-point runner on the same configuration.
        let circuit = rescq_workloads::generate("decoder_stress_n9", 1).unwrap();
        let mut cfg = base_config();
        cfg.decoder = DecoderConfig::fixed(0.5);
        let direct = run_seeds(&circuit, &cfg, 1, 5, 2).unwrap();
        let row = rows.iter().find(|r| r.throughput == 0.5).unwrap();
        assert_eq!(row.mean_cycles, direct.mean_cycles());
    }

    #[test]
    fn scales_resolve() {
        assert!(ExperimentScale::reduced().quick);
        assert!(!ExperimentScale::full().quick);
        assert!(!ExperimentScale::reduced().benchmarks().is_empty());
        assert_eq!(ExperimentScale::full().benchmarks().len(), 23);
    }
}
