//! The README's code and config snippets, compiled and executed so the
//! examples cannot rot. Each test body mirrors one fenced block in
//! `README.md` — when you edit one, edit the other.

/// README "Quick start": the Rust snippet, verbatim.
#[test]
fn quick_start_snippet_runs() {
    use rescq_repro::prelude::*;

    let circuit = rescq_repro::workloads::vqe::generate(13, 777);
    let config = SimConfig::builder()
        .distance(7)
        .physical_error_rate(1e-4)
        .scheduler(SchedulerKind::Rescq)
        .seed(42)
        .build();
    let report = simulate(&circuit, &config).expect("simulation runs");
    assert!(report.total_cycles() > 0.0);
}

/// README "Priority classes": the config-file snippet, verbatim, through
/// the real parser.
#[test]
fn priority_classes_config_snippet_parses() {
    let snippet = "\
# rescq simulation config
benchmark = factory_n12
compression = 0.25
priority_classes = factory>injection>compute>speculative
seeds = 10
";
    let spec = rescq_cli::parse_config(snippet).expect("README config snippet must parse");
    assert_eq!(spec.benchmark, "factory_n12");
    assert!((spec.config.compression - 0.25).abs() < 1e-12);
    assert_eq!(spec.seeds, 10);
    let lattice = spec
        .config
        .priority_classes
        .expect("snippet enables the lattice");
    assert_eq!(lattice.to_string(), "factory>injection>compute>speculative");
    // The workload the snippet names must exist.
    assert!(rescq_repro::workloads::generate(&spec.benchmark, 1).is_some());
}

/// README "Parameter sweeps": the spec-file snippet, verbatim, through the
/// real parser.
#[test]
fn sweep_spec_snippet_parses() {
    let snippet = r#"
[sweep]
workloads    = ["dnn_n16", "gcm_n13"]    # Table 3 names or "file:<path>"
schedulers   = ["rescq", "greedy"]       # default ["rescq"]
distances    = [7]                       # default [7]
error_rates  = [1e-4]                    # default [1e-4]
k            = [25, "dynamic"]           # default [25]
compressions = [0.0, 0.5]                # default [0.0]
decoders     = ["ideal", "fixed:0.5", "adaptive:1x4"]  # default ["ideal"]
engine_threads = [1, 4]                  # engine shards per run, default [1]
priority_classes = ["off", "factory>injection>compute>speculative"]  # default ["off"]
seeds        = 10                        # runs per point, default 3
base_seed    = 1
decode_prep  = false                     # route prep verification through the decoder
"#;
    let spec = rescq_repro::harness::SweepSpec::parse(snippet).expect("README sweep spec parses");
    // 2 workloads x 2 schedulers x 2 k x 2 compressions x 3 decoders x
    // 2 engine-thread points x 2 priority points.
    assert_eq!(spec.num_points(), 2 * 2 * 2 * 2 * 3 * 2 * 2);
    assert_eq!(spec.seeds, 10);
    assert_eq!(spec.priority.len(), 2);
    assert!(spec.priority[0].is_none());
    assert!(spec.priority[1].is_some());
}
